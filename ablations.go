package beacon

import (
	"fmt"
	"strings"

	"beacon/internal/core"
	"beacon/internal/report"
)

// This file contains ablation studies beyond the paper's figures: sweeps
// over the design choices DESIGN.md calls out (multi-chip coalescing group
// size, CXLG-DIMM population, CXL link bandwidth, task-scheduler queue
// depth, pool scale). They answer "why these parameters" questions a reader
// of the paper is left with, using the same workloads and machines as the
// main figures.

// AblationPoint is one configuration of a sweep.
type AblationPoint struct {
	// Label names the swept value.
	Label string
	// Cycles is the makespan.
	Cycles int64
	// Speedup is relative to the sweep's first point.
	Speedup float64
	// Extra carries a sweep-specific secondary metric (documented per
	// ablation function).
	Extra float64
}

// AblationResult is a completed sweep.
type AblationResult struct {
	Title     string
	ExtraName string
	Points    []AblationPoint
}

// String renders the sweep.
func (a *AblationResult) String() string {
	t := report.NewTable(a.Title, "config", "cycles", "speedup", a.ExtraName)
	for _, p := range a.Points {
		t.AddRow(p.Label, fmt.Sprintf("%d", p.Cycles),
			report.FormatRatio(p.Speedup), fmt.Sprintf("%.3f", p.Extra))
	}
	return t.String()
}

func (a *AblationResult) finish() {
	if len(a.Points) == 0 {
		return
	}
	base := float64(a.Points[0].Cycles)
	for i := range a.Points {
		a.Points[i].Speedup = base / float64(a.Points[i].Cycles)
	}
}

// AblationCoalesceGroup sweeps the multi-chip coalescing group size on
// BEACON-D FM-index seeding (the knob §IV-D says is "fine-tuned to achieve
// the best performance"). Extra is the DRAM overfetch ratio
// (transferred/useful bytes): group 16 (lock-step) wastes bandwidth on a
// 32 B access, group 1 (per-chip) unbalances chips; 8 is the sweet spot for
// 32 B objects on x4 chips.
func AblationCoalesceGroup(rc RunConfig) (*AblationResult, error) {
	wl, err := rc.buildWorkload(FMSeeding, PinusTaeda, MultiPass)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Title:     "Ablation — multi-chip coalescing group size (BEACON-D, FM seeding)",
		ExtraName: "overfetch",
	}
	for _, g := range []int{1, 2, 4, 8, 16} {
		cfg := core.DefaultConfig(core.DesignD, core.AllOptions())
		cfg.CoalesceGroup = g
		res, err := core.Run(cfg, internalTrace(wl))
		if err != nil {
			return nil, err
		}
		over := 1.0
		if res.DRAM.UsefulBytes > 0 {
			over = float64(res.DRAM.TransferredBytes) / float64(res.DRAM.UsefulBytes)
		}
		out.Points = append(out.Points, AblationPoint{
			Label:  fmt.Sprintf("group=%d", g),
			Cycles: int64(res.Cycles),
			Extra:  over,
		})
	}
	out.finish()
	return out, nil
}

// AblationCXLGPerSwitch sweeps the number of enhanced CXLG-DIMMs per switch
// on BEACON-D FM seeding — the cost/performance dial between BEACON-S
// (zero customized DIMMs) and a fully customized pool. Extra is the local
// access fraction.
func AblationCXLGPerSwitch(rc RunConfig) (*AblationResult, error) {
	wl, err := rc.buildWorkload(FMSeeding, PinusTaeda, MultiPass)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Title:     "Ablation — CXLG-DIMMs per switch (BEACON-D, FM seeding)",
		ExtraName: "local-frac",
	}
	for _, n := range []int{1, 2, 3, 4} {
		cfg := core.DefaultConfig(core.DesignD, core.AllOptions())
		cfg.CXLGPerSwitch = n
		res, err := core.Run(cfg, internalTrace(wl))
		if err != nil {
			return nil, err
		}
		local := 0.0
		if t := res.LocalAccesses + res.RemoteAccesses; t > 0 {
			local = float64(res.LocalAccesses) / float64(t)
		}
		out.Points = append(out.Points, AblationPoint{
			Label:  fmt.Sprintf("cxlg=%d", n),
			Cycles: int64(res.Cycles),
			Extra:  local,
		})
	}
	out.finish()
	return out, nil
}

// AblationLinkBandwidth sweeps the per-DIMM CXL link bandwidth on BEACON-S
// FM seeding (x4 through x32 PCIe 5.0 equivalents). Extra is the
// communication share of energy. BEACON-S routes every access over these
// links, so this is its most sensitive parameter.
func AblationLinkBandwidth(rc RunConfig) (*AblationResult, error) {
	wl, err := rc.buildWorkload(FMSeeding, PinusTaeda, MultiPass)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Title:     "Ablation — per-DIMM CXL link bandwidth (BEACON-S, FM seeding)",
		ExtraName: "comm-energy",
	}
	opts := core.Options{DataPacking: true, MemAccessOpt: true, Placement: true}
	for _, bpc := range []float64{10, 20, 40, 80, 160} {
		cfg := core.DefaultConfig(core.DesignS, opts)
		cfg.Fabric.DIMMLink.BytesPerCycle = bpc
		res, err := core.Run(cfg, internalTrace(wl))
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AblationPoint{
			Label:  fmt.Sprintf("x%d (%.1f GB/s)", int(bpc/10), bpc*0.8),
			Cycles: int64(res.Cycles),
			Extra:  res.Energy.CommunicationRatio(),
		})
	}
	out.finish()
	return out, nil
}

// AblationInFlight sweeps the Task Scheduler queue depth on BEACON-S FM
// seeding. The scheduler must keep enough tasks in flight to cover the
// fabric's bandwidth-delay product; the sweep shows throughput saturating
// once the queue is deep enough. Extra is tasks-in-flight per PE.
func AblationInFlight(rc RunConfig) (*AblationResult, error) {
	wl, err := rc.buildWorkload(FMSeeding, PinusTaeda, MultiPass)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Title:     "Ablation — task scheduler queue depth (BEACON-S, FM seeding)",
		ExtraName: "tasks/PE",
	}
	opts := core.Options{DataPacking: true, MemAccessOpt: true, Placement: true}
	for _, inflight := range []int{64, 256, 1024, 4096} {
		cfg := core.DefaultConfig(core.DesignS, opts)
		cfg.InFlightPerNode = inflight
		res, err := core.Run(cfg, internalTrace(wl))
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AblationPoint{
			Label:  fmt.Sprintf("inflight=%d", inflight),
			Cycles: int64(res.Cycles),
			Extra:  float64(inflight) / float64(cfg.PEsPerNode),
		})
	}
	out.finish()
	return out, nil
}

// AblationPoolScale sweeps the pool size (switch count) on BEACON-D FM
// seeding with the workload held constant — the scalability claim behind
// "the memory pool ... can scale-out far beyond this". Extra is the number
// of compute nodes.
func AblationPoolScale(rc RunConfig) (*AblationResult, error) {
	wl, err := rc.buildWorkload(FMSeeding, PinusTaeda, MultiPass)
	if err != nil {
		return nil, err
	}
	out := &AblationResult{
		Title:     "Ablation — pool scale-out (BEACON-D, FM seeding, fixed workload)",
		ExtraName: "nodes",
	}
	for _, switches := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig(core.DesignD, core.AllOptions())
		cfg.Switches = switches
		res, err := core.Run(cfg, internalTrace(wl))
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, AblationPoint{
			Label:  fmt.Sprintf("switches=%d", switches),
			Cycles: int64(res.Cycles),
			Extra:  float64(switches * cfg.CXLGPerSwitch),
		})
	}
	out.finish()
	return out, nil
}

// AblationRowPolicy compares open-page and closed-page row policies on
// BEACON-D for a locality-rich workload (hash seeding, spatial candidate
// lists) and a random fine-grained one (FM seeding). Extra is the row-hit
// fraction.
func AblationRowPolicy(rc RunConfig) (*AblationResult, error) {
	out := &AblationResult{
		Title:     "Ablation — row-buffer policy (BEACON-D)",
		ExtraName: "row-hit-frac",
	}
	for _, app := range []Application{FMSeeding, HashSeeding} {
		wl, err := rc.buildWorkload(app, PinusTaeda, MultiPass)
		if err != nil {
			return nil, err
		}
		for _, closed := range []bool{false, true} {
			cfg := core.DefaultConfig(core.DesignD, core.AllOptions())
			cfg.DIMM.ClosedPage = closed
			res, err := core.Run(cfg, internalTrace(wl))
			if err != nil {
				return nil, err
			}
			policy := "open"
			if closed {
				policy = "closed"
			}
			hitFrac := 0.0
			if total := res.DRAM.RowHits + res.DRAM.RowMisses + res.DRAM.RowConflicts; total > 0 {
				hitFrac = float64(res.DRAM.RowHits) / float64(total)
			}
			out.Points = append(out.Points, AblationPoint{
				Label:  fmt.Sprintf("%s/%s-page", app, policy),
				Cycles: int64(res.Cycles),
				Extra:  hitFrac,
			})
		}
	}
	out.finish()
	return out, nil
}

// AllAblations runs every sweep and renders them.
func AllAblations(rc RunConfig) (string, error) {
	var b strings.Builder
	for _, fn := range []func(RunConfig) (*AblationResult, error){
		AblationCoalesceGroup,
		AblationCXLGPerSwitch,
		AblationLinkBandwidth,
		AblationInFlight,
		AblationPoolScale,
		AblationRowPolicy,
	} {
		res, err := fn(rc)
		if err != nil {
			return "", err
		}
		b.WriteString(res.String())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
