package beacon

import (
	"fmt"

	"beacon/internal/core"
	"beacon/internal/cxl"
	"beacon/internal/memmgmt"
	"beacon/internal/sim"
)

// The Fig. 8 memory-management flow as an end-to-end operation: the host
// requests DIMM-granularity allocations for the workload's spaces, the
// framework performs the memory clean (migrating resident tenant data and
// updating page tables), the workload runs, and the DIMMs are returned.
// SimulateWithAllocation charges the allocation's migration traffic as
// setup time, so callers can see when the one-time cost matters relative to
// the run.

// AllocationReport extends a Report with the Fig. 8 setup costs.
type AllocationReport struct {
	Report
	// DIMMsGranted is the number of DIMM grants backing the workload.
	DIMMsGranted int
	// MigratedBytes is tenant data displaced by the memory clean.
	MigratedBytes uint64
	// PageTableUpdates counts rewritten 4 KiB page-table entries.
	PageTableUpdates uint64
	// SetupSeconds is the modeled duration of the allocation (migration
	// traffic over the pool fabric plus page-table update work).
	SetupSeconds float64
	// TotalSeconds is setup + run.
	TotalSeconds float64
}

// AllocationOptions configures the pool occupancy the allocator faces.
type AllocationOptions struct {
	// TenantFraction is the share of every DIMM already holding other
	// tenants' data (0..1); the memory clean migrates what the workload's
	// allocation displaces.
	TenantFraction float64
	// PreferSwitch biases placement (default 0).
	PreferSwitch int
}

// migrationBytesPerCycle is the effective migration drain rate: bulk DMA at
// one x8 CXL link's bandwidth (the clean runs DIMM-to-DIMM over the fabric).
const migrationBytesPerCycle = 40.0

// pageTableUpdateCycles is the host+switch cost per rewritten entry.
const pageTableUpdateCycles = 160.0

// SimulateWithAllocation performs allocate -> run -> deallocate on a BEACON
// platform, charging the memory clean's migration as setup time.
func SimulateWithAllocation(p Platform, w *Workload, opts AllocationOptions) (*AllocationReport, error) {
	if p.Kind != BeaconD && p.Kind != BeaconS {
		return nil, fmt.Errorf("beacon: allocation-aware runs require a BEACON platform, got %v", p.Kind)
	}
	if w == nil || w.tr == nil {
		return nil, fmt.Errorf("beacon: nil workload")
	}
	if opts.TenantFraction < 0 || opts.TenantFraction > 1 {
		return nil, fmt.Errorf("beacon: tenant fraction %g out of [0,1]", opts.TenantFraction)
	}
	design := core.DesignD
	if p.Kind == BeaconS {
		design = core.DesignS
	}
	cfg := core.DefaultConfig(design, p.Opts.coreOpts())
	pool := memmgmt.PoolLayout{
		Switches:       cfg.Switches,
		DIMMsPerSwitch: cfg.DIMMsPerSwitch,
		CXLGSlots:      cfg.CXLGPerSwitch,
	}
	// Size each DIMM so the workload must spread (the memory-expansion
	// regime): capacity = footprint / half the pool.
	footprint := w.tr.FootprintBytes()
	capacity := footprint / uint64(pool.TotalDIMMs()/2+1)
	if capacity == 0 {
		capacity = 1
	}
	alloc, err := memmgmt.NewAllocator(pool, capacity)
	if err != nil {
		return nil, err
	}
	for s := 0; s < pool.Switches; s++ {
		for d := 0; d < pool.DIMMsPerSwitch; d++ {
			tenant := uint64(float64(capacity) * opts.TenantFraction)
			if err := alloc.SetTenantBytes(cxl.DIMM(s, d), tenant); err != nil {
				return nil, err
			}
		}
	}

	var granted []*memmgmt.Allocation
	var migrated, ptes uint64
	for _, req := range memmgmt.PlanWorkload(w.tr, pool, opts.PreferSwitch) {
		a, err := alloc.Allocate(req)
		if err != nil && req.NeedCXLG {
			// Hot data exceeding the CXLG-DIMMs spills into unmodified
			// CXL-DIMMs — the memory-expansion story itself.
			req.NeedCXLG = false
			a, err = alloc.Allocate(req)
		}
		if err != nil {
			return nil, fmt.Errorf("beacon: allocation failed: %w", err)
		}
		granted = append(granted, a)
		migrated += a.MigratedBytes
		ptes += a.PageTableUpdates
	}

	rep, err := Simulate(p, w)
	if err != nil {
		return nil, err
	}
	for _, a := range granted {
		if err := alloc.Deallocate(a.ID); err != nil {
			return nil, err
		}
	}

	setupCycles := float64(migrated)/migrationBytesPerCycle + float64(ptes)*pageTableUpdateCycles
	out := &AllocationReport{
		Report:           *rep,
		MigratedBytes:    migrated,
		PageTableUpdates: ptes,
		SetupSeconds:     sim.SecondsOf(setupCycles),
	}
	for _, a := range granted {
		out.DIMMsGranted += len(a.DIMMs)
	}
	out.TotalSeconds = out.SetupSeconds + rep.Seconds
	return out, nil
}
