package beacon

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"

	"beacon/internal/obs"
	"beacon/internal/runner"
)

// TestObservabilityDeterminism is the acceptance test for the observability
// layer's hard rule: attaching metrics and tracing must not move a single
// cycle. Every platform kind simulates once bare and once fully
// instrumented (tight sampling cadence included); the reports must be
// deeply equal, and the instrumented run must dump valid JSON.
func TestObservabilityDeterminism(t *testing.T) {
	t.Parallel()
	wl, err := NewFMSeedingWorkload(quickCfg(PinusTaeda))
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollection()
	col.SampleEvery = 500 // aggressive cadence: many OnAdvance snapshots
	for _, kind := range []PlatformKind{CPU, DDRBaseline, BeaconD, BeaconS} {
		p := Platform{Kind: kind, Opts: AllOptimizations()}
		bare, err := Simulate(p, wl)
		if err != nil {
			t.Fatalf("%v bare: %v", kind, err)
		}
		ob := col.New(kind.String())
		observed, err := SimulateObserved(p, wl, ob)
		if err != nil {
			t.Fatalf("%v observed: %v", kind, err)
		}
		if bare.Cycles != observed.Cycles {
			t.Errorf("%v: observability moved the clock: %d vs %d cycles",
				kind, bare.Cycles, observed.Cycles)
		}
		if !reflect.DeepEqual(bare, observed) {
			t.Errorf("%v: bare and observed reports differ:\n%+v\nvs\n%+v",
				kind, bare, observed)
		}
		if kind != CPU {
			// Timed platforms must actually have recorded something.
			snaps := ob.Metrics.Snapshots()
			if len(snaps) == 0 {
				t.Errorf("%v: no metric snapshots recorded", kind)
			}
			if ob.Trace.Events() == 0 {
				t.Errorf("%v: no trace events recorded", kind)
			}
			// The utilization accountant must cover every timed platform:
			// without util.* series there is nothing to attribute.
			hasUtil := false
			for name := range snaps[len(snaps)-1].Values {
				if strings.HasPrefix(name, "util.") {
					hasUtil = true
					break
				}
			}
			if !hasUtil {
				t.Errorf("%v: no util.* metrics in snapshots", kind)
			}
		}
	}

	var metrics, trace strings.Builder
	if err := col.WriteMetricsJSON(&metrics); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(metrics.String())) {
		t.Error("metrics dump is not valid JSON")
	}
	if err := col.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if !json.Valid([]byte(trace.String())) {
		t.Error("chrome trace dump is not valid JSON")
	}
}

// TestObservedRunsAreRepeatable asserts two instrumented runs of the same
// simulation produce byte-identical metric and trace dumps — the property
// that makes obs output goldenable.
func TestObservedRunsAreRepeatable(t *testing.T) {
	t.Parallel()
	wl, err := NewFMSeedingWorkload(quickCfg(PinusTaeda))
	if err != nil {
		t.Fatal(err)
	}
	dump := func() (string, string) {
		ob := obs.New("run")
		ob.SampleEvery = 1000
		if _, err := SimulateObserved(Platform{Kind: BeaconD, Opts: AllOptimizations()}, wl, ob); err != nil {
			t.Fatal(err)
		}
		var m, tr strings.Builder
		if err := ob.Metrics.WriteJSON(&m); err != nil {
			t.Fatal(err)
		}
		if err := ob.Trace.WriteChromeTrace(&tr); err != nil {
			t.Fatal(err)
		}
		return m.String(), tr.String()
	}
	m1, t1 := dump()
	m2, t2 := dump()
	if m1 != m2 {
		t.Error("metric dumps differ across identical runs")
	}
	if t1 != t2 {
		t.Error("trace dumps differ across identical runs")
	}
}

// TestEvaluatorObservability runs a figure with a collection attached and
// asserts (a) the figure equals an unobserved run and (b) every job
// registered under its full app/species/platform/step label.
func TestEvaluatorObservability(t *testing.T) {
	t.Parallel()
	plain, err := NewEvaluator(tinyRC(), 4).Figure13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollection()
	observed, err := NewEvaluator(tinyRC(), 4).WithObservability(col).Figure13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, observed) {
		t.Error("observability changed Figure 13")
	}
	if col.Len() != 2 {
		t.Fatalf("collection has %d jobs, want 2", col.Len())
	}
	var b strings.Builder
	if err := col.WriteMetricsJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{
		"fm-seeding/Pt/beacon-d/placed",
		"fm-seeding/Pt/beacon-d/coalesced",
	} {
		if !strings.Contains(b.String(), label) {
			t.Errorf("metrics dump missing job label %q", label)
		}
	}
}

// TestEvaluatorProgress asserts -progress plumbing reports one line per
// leaf simulation with its wall time.
func TestEvaluatorProgress(t *testing.T) {
	t.Parallel()
	var b strings.Builder
	mu := &syncBuilder{b: &b}
	if _, err := NewEvaluator(tinyRC(), 2).WithProgress(mu).Figure13(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := mu.String()
	if got := strings.Count(out, "done"); got != 2 {
		t.Fatalf("progress lines = %d, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, "fm-seeding/Pt/beacon-d/placed") {
		t.Errorf("progress output missing job label:\n%s", out)
	}
}

// TestJobErrorIdentity asserts a failed simulation's error carries the full
// figure/species/platform/step identity so the operator can locate it.
func TestJobErrorIdentity(t *testing.T) {
	t.Parallel()
	e := NewEvaluator(tinyRC(), 1)
	bad := e.simJob(FMSeeding, PinusTaeda, MultiPass, Platform{Kind: PlatformKind(99)}, "cpu-ref")
	_, err := runner.Run(context.Background(), e.pool, []runner.Job[*Report]{bad})
	if err == nil {
		t.Fatal("invalid platform must fail")
	}
	want := "fm-seeding/Pt/platform(99)/cpu-ref"
	if !strings.Contains(err.Error(), want) {
		t.Errorf("error %q missing job identity %q", err, want)
	}
}

// TestEvaluationProvenance asserts the evaluation carries deterministic run
// identity (and only deterministic identity).
func TestEvaluationProvenance(t *testing.T) {
	t.Parallel()
	rc := tinyRC()
	a := obs.NewProvenance(rc, rc.Seed)
	b := obs.NewProvenance(rc, rc.Seed)
	if !reflect.DeepEqual(a, b) {
		t.Error("provenance for identical configs differs")
	}
	rc2 := rc
	rc2.Reads++
	if obs.NewProvenance(rc2, rc2.Seed).ConfigHash == a.ConfigHash {
		t.Error("different configs share a config hash")
	}
}

// syncBuilder is a concurrency-safe strings.Builder for observer callbacks.
type syncBuilder struct {
	mu sync.Mutex
	b  *strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}
