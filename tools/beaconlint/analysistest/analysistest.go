// Package analysistest checks analyzers against fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: fixture sources
// carry `// want "regexp"` comments naming the diagnostics that must be
// reported on that line, and the harness fails on any mismatch in either
// direction — a missing diagnostic and an unexpected one are both errors.
//
// Fixtures live under testdata/src/<name>/ and are loaded as a single
// package with a caller-chosen import path (analyzers apply package-path
// policy, e.g. goroutinescope's allowlist). Fixture imports resolve
// against real export data from the enclosing module's build, so fixtures
// can exercise type-specific sinks like sim.Engine.Schedule.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/dataflow"
	"beacon/tools/beaconlint/directive"
	"beacon/tools/beaconlint/load"
)

// fixtureImports are the import paths fixture packages may use. Export
// data is resolved once per test binary.
var fixtureImports = []string{
	"crypto/rand", "errors", "fmt", "io", "math/rand", "math/rand/v2",
	"os", "sort", "strings", "sync", "testing", "time",
	"beacon/internal/obs", "beacon/internal/sim",
}

var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

func exports(t *testing.T) map[string]string {
	t.Helper()
	exportOnce.Do(func() {
		exportMap, exportErr = load.ExportMap("", fixtureImports...)
	})
	if exportErr != nil {
		t.Fatalf("analysistest: resolving fixture export data: %v", exportErr)
	}
	return exportMap
}

// Config describes one fixture run.
type Config struct {
	// Dir is the fixture directory (usually testdata/src/<name>).
	Dir string
	// ImportPath is the package path the fixture is analyzed under.
	ImportPath string
	// Analyzers is the suite to apply.
	Analyzers []*analysis.Analyzer
	// Directives, when set, filters diagnostics through
	// //beaconlint:allow handling (with Known as the registered set), so
	// fixtures can assert suppression, missing-reason, and stale
	// behavior.
	Directives bool
	// Known is the analyzer name set for directive validation; defaults
	// to the names of Analyzers.
	Known map[string]bool
}

// Run loads the fixture and compares reported diagnostics against the
// fixture's want comments.
func Run(t *testing.T, cfg Config) {
	t.Helper()
	files, err := fixtureFiles(cfg.Dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := load.LoadFiles(fset, cfg.ImportPath, files, exports(t))
	if err != nil {
		t.Fatalf("analysistest: loading %s: %v", cfg.Dir, err)
	}

	// A fresh fact store per fixture run: fact-driven analyzers (unitflow,
	// seedflow) see their own package-local exports but nothing from other
	// fixtures.
	facts := dataflow.NewStore()
	var diags []analysis.Diagnostic
	for _, a := range cfg.Analyzers {
		a := a
		pass := pkg.Pass(a, facts, func(d analysis.Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			t.Fatalf("analysistest: %s: %v", a.Name, err)
		}
	}
	if cfg.Directives {
		known := cfg.Known
		if known == nil {
			known = map[string]bool{}
			for _, a := range cfg.Analyzers {
				known[a.Name] = true
			}
		}
		diags = directive.Apply(fset, directive.Collect(fset, pkg.Files), diags, known)
	}

	wants, err := parseWants(files)
	if err != nil {
		t.Fatal(err)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !consume(wants, key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	leftover := make([]string, 0)
	for key, res := range wants {
		for _, re := range res {
			leftover = append(leftover, fmt.Sprintf("%s: no diagnostic matching %q", key, re.String()))
		}
	}
	sort.Strings(leftover)
	for _, msg := range leftover {
		t.Error(msg)
	}
}

func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysistest: %w", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("analysistest: no fixture files in %s", dir)
	}
	return files, nil
}

// wantRE matches a want comment; expectations follow as quoted Go strings.
var (
	wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
	exprRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")
)

// consume matches message against one pending expectation at key and
// removes it.
func consume(wants map[string][]*regexp.Regexp, key, message string) bool {
	for i, re := range wants[key] {
		if re.MatchString(message) {
			wants[key] = append(wants[key][:i], wants[key][i+1:]...)
			if len(wants[key]) == 0 {
				delete(wants, key)
			}
			return true
		}
	}
	return false
}

func parseWants(files []string) (map[string][]*regexp.Regexp, error) {
	wants := map[string][]*regexp.Regexp{}
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", file, i+1)
			for _, quoted := range exprRE.FindAllString(m[1], -1) {
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want expression %s: %w", key, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %s: %w", key, quoted, err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants, nil
}
