package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// buildOnce compiles the beaconlint binary once per test binary.
var (
	buildOnce sync.Once
	binPath   string
	buildErr  error
)

func lintBinary(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "beaconlint-cli")
		if err != nil {
			buildErr = err
			return
		}
		binPath = filepath.Join(dir, "beaconlint")
		out, err := exec.Command("go", "build", "-o", binPath, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			binPath = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building beaconlint: %v\n%s", buildErr, binPath)
	}
	return binPath
}

// runLint executes the binary and returns (stdout, stderr, exit code).
func runLint(t *testing.T, dir string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(lintBinary(t), args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running beaconlint: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// The standalone driver's exit codes: 0 clean, 1 load error, 2 findings.

func TestStandaloneExitClean(t *testing.T) {
	stdout, stderr, code := runLint(t, factmodDir, "./a")
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if stderr != "" {
		t.Errorf("clean run wrote to stderr: %s", stderr)
	}
}

func TestStandaloneExitLoadError(t *testing.T) {
	_, stderr, code := runLint(t, factmodDir, "./doesnotexist")
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "beaconlint:") {
		t.Errorf("load error not reported on stderr: %s", stderr)
	}
}

func TestStandaloneExitFindings(t *testing.T) {
	stdout, stderr, code := runLint(t, factmodDir, "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "[unitflow]") || !strings.Contains(stderr, "[seedflow]") {
		t.Errorf("expected unitflow and seedflow findings on stderr, got: %s", stderr)
	}
	if stdout != "" {
		t.Errorf("without -json, stdout must stay empty, got: %s", stdout)
	}
}

// TestStandaloneJSON pins the -json wire format: one object per line on
// stdout, the human form still on stderr.
func TestStandaloneJSON(t *testing.T) {
	stdout, stderr, code := runLint(t, factmodDir, "-json", "./...")
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "[unitflow]") {
		t.Errorf("-json must keep the human form on stderr, got: %s", stderr)
	}
	lines := strings.Split(strings.TrimSpace(stdout), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON diagnostics on stdout")
	}
	var sawUnitflow bool
	for _, line := range lines {
		var d jsonDiagnostic
		if err := json.Unmarshal([]byte(line), &d); err != nil {
			t.Fatalf("stdout line is not a JSON diagnostic: %q: %v", line, err)
		}
		if d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
		if d.Analyzer == "unitflow" && strings.HasSuffix(d.File, "b.go") {
			sawUnitflow = true
		}
	}
	if !sawUnitflow {
		t.Error("expected a unitflow diagnostic for b.go in the JSON stream")
	}
}

// The unitchecker (go vet -vettool) protocol: same exit codes, driven by
// .cfg files.

// writeVetCfg writes a minimal vet config for one importless file.
func writeVetCfg(t *testing.T, dir, src string, vetx bool) (cfgPath, vetxPath string) {
	t.Helper()
	goFile := filepath.Join(dir, "uc.go")
	if err := os.WriteFile(goFile, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	cfg := map[string]any{
		"ImportPath": "beacon/fixtures/uc",
		"GoFiles":    []string{goFile},
	}
	if vetx {
		vetxPath = filepath.Join(dir, "uc.vetx")
		cfg["VetxOutput"] = vetxPath
	}
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfgPath = filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, data, 0o666); err != nil {
		t.Fatal(err)
	}
	return cfgPath, vetxPath
}

func TestUnitcheckerExitClean(t *testing.T) {
	cfg, vetx := writeVetCfg(t, t.TempDir(), "package uc\n\nfunc ok() int { return 1 }\n", true)
	stdout, stderr, code := runLint(t, "", cfg)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	// The facts file must exist even when empty: go vet requires it.
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestUnitcheckerExitFindings(t *testing.T) {
	src := "package uc\n\nfunc f(busyCycles int64, totalSeconds float64) float64 {\n\treturn float64(busyCycles) + totalSeconds\n}\n"
	cfg, _ := writeVetCfg(t, t.TempDir(), src, true)
	_, stderr, code := runLint(t, "", cfg)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "[unitflow]") {
		t.Errorf("expected a unitflow finding, got: %s", stderr)
	}
}

func TestUnitcheckerExitBadConfig(t *testing.T) {
	dir := t.TempDir()
	cfgPath := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(cfgPath, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runLint(t, "", cfgPath)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr)
	}
}

// TestUnitcheckerFactsSerialized proves the .vetx file carries dataflow
// facts, not the historical empty placeholder.
func TestUnitcheckerFactsSerialized(t *testing.T) {
	src := "package uc\n\n// Elapsed carries a seconds fact derived from its body.\nfunc Elapsed(n int) float64 {\n\ttotalSeconds := float64(n) * 2.0\n\treturn totalSeconds\n}\n"
	cfg, vetx := writeVetCfg(t, t.TempDir(), src, true)
	_, stderr, code := runLint(t, "", cfg)
	if code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr: %s", code, stderr)
	}
	data, err := os.ReadFile(vetx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "unitflow") || !strings.Contains(string(data), "beacon/fixtures/uc.Elapsed") {
		t.Errorf("vetx file missing the unitflow fact: %s", data)
	}
}
