// Package uflow exercises the unitflow analyzer: cross-unit arithmetic,
// mis-unit assignments and call arguments, and raw CyclePeriodSeconds
// references outside internal/sim are diagnosed; unit-correct physics is
// not.
package uflow

import "beacon/internal/sim"

// Report mirrors the artifact structs whose field names carry units.
type Report struct {
	SetupSeconds float64
	StallCycles  int64
	TotalBytes   uint64
}

func crossUnitArithmetic(busyCycles int64, elapsedSeconds float64) {
	_ = float64(busyCycles) + elapsedSeconds  // want `cycles and seconds mixed in arithmetic; convert through internal/sim/time\.go first`
	_ = elapsedSeconds - float64(busyCycles)  // want `seconds and cycles mixed in arithmetic; convert through internal/sim/time\.go first`
	if float64(busyCycles) > elapsedSeconds { // want `cycles and seconds compared; convert through internal/sim/time\.go first`
		return
	}
	// Same unit on both sides: fine.
	_ = busyCycles + busyCycles
	// Constants are unitless and adopt the other side's unit.
	_ = busyCycles + 5
	_ = elapsedSeconds * 2
}

func typedCycles(span sim.Cycle, windowSeconds float64) {
	// The sim.Cycle type is evidence even without a name convention.
	_ = float64(span) + windowSeconds // want `cycles and seconds mixed in arithmetic; convert through internal/sim/time\.go first`
}

func misAssignment(waitCycles int64) {
	var totalSeconds float64
	totalSeconds = float64(waitCycles) // want `cycles value assigned to seconds-named totalSeconds`
	_ = totalSeconds

	// Converting first is the sanctioned path.
	okSeconds := sim.Seconds(sim.Cycle(waitCycles))
	_ = okSeconds
}

func misField(stallCycles int64) Report {
	return Report{
		SetupSeconds: float64(stallCycles), // want `cycles value assigned to seconds-named field SetupSeconds`
		StallCycles:  stallCycles,
	}
}

func takesSeconds(windowSeconds float64) float64 { return windowSeconds }

func misArgument(busyCycles int64) {
	_ = takesSeconds(float64(busyCycles)) // want `cycles value passed to seconds parameter "windowSeconds" of takesSeconds`
	_ = takesSeconds(sim.Seconds(sim.Cycle(busyCycles)))
}

// elapsedSeconds has an unnamed numeric result; the unit comes from the
// function's own name and flows to call sites through the local fact.
func elapsedSeconds(r *Report) float64 {
	return r.SetupSeconds
}

func factThroughCall(busyCycles int64) {
	_ = float64(busyCycles) + elapsedSeconds(nil) // want `cycles and seconds mixed in arithmetic; convert through internal/sim/time\.go first`
}

// Units propagate through local assignment chains.
func chained(r Report) {
	s := r.SetupSeconds
	total := s * 2 // multiplying by a count leaves the lattice...
	_ = total
	u := s
	_ = float64(r.StallCycles) + u // want `cycles and seconds mixed in arithmetic; convert through internal/sim/time\.go first`
}

// The product and ratio rules keep real physics quiet.
func physics(migratedBytes uint64, spanCycles int64, rateBytesPerCycle float64) {
	bytesMoved := rateBytesPerCycle * float64(spanCycles) // bytes/cycle x cycles = bytes
	_ = float64(migratedBytes) + bytesMoved
	transferCycles := float64(migratedBytes) / rateBytesPerCycle // bytes / bpc = cycles
	_ = float64(spanCycles) + transferCycles
	measuredBytesPerCycle := float64(migratedBytes) / float64(spanCycles) // bytes / cycles = bpc
	_ = rateBytesPerCycle + measuredBytesPerCycle
}

func rawConversion(busyCycles int64) float64 {
	return float64(busyCycles) * sim.CyclePeriodSeconds // want `raw cycle<->seconds conversion via sim\.CyclePeriodSeconds outside internal/sim/time\.go; use sim\.Seconds, sim\.SecondsOf or sim\.CyclesIn`
}

func sanctionedConversion(busyCycles int64, windowSeconds float64) {
	_ = sim.SecondsOf(float64(busyCycles))
	_ = sim.CyclesIn(windowSeconds)
	_ = sim.Seconds(sim.Cycle(busyCycles))
}
