// Package mapord exercises the maporder analyzer: order-dependent effects
// under map iteration are diagnosed; the collect-then-sort idiom,
// loop-local writers, and slice iteration are not.
package mapord

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"beacon/internal/obs"
	"beacon/internal/sim"
)

func appendOutside(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration with order-dependent effect \(append to slice declared outside the loop\)`
		out = append(out, k)
	}
	return out
}

func collectThenSortOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // the canonical fix: collect, sort, then use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writeLoop(w io.Writer, m map[string]int) {
	for k, v := range m { // want `map iteration with order-dependent effect \(write to io\.Writer\)`
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func loopLocalBuilderOK(m map[string]int) int {
	n := 0
	for k := range m { // writer is loop-local scratch: order never escapes
		var sb strings.Builder
		sb.WriteString(k)
		n += sb.Len()
	}
	return n
}

func testFailures(t *testing.T, m map[string]int) {
	for k, v := range m { // want `map iteration with order-dependent effect \(testing log/failure`
		if v < 0 {
			t.Errorf("%s negative", k)
		}
	}
}

func schedule(e *sim.Engine, m map[string]int) {
	for _, v := range m { // want `map iteration with order-dependent effect \(sim\.Engine event scheduling\)`
		d := sim.Cycles(v)
		e.Schedule(d, func() {})
	}
}

func metrics(o *obs.Obs, m map[string]int) {
	c := o.Registry().Counter("x")
	for range m { // want `map iteration with order-dependent effect \(obs metric/trace emission\)`
		c.Inc()
	}
}

func metricReadOK(o *obs.Obs, m map[string]int) map[string]float64 {
	c := o.Registry().Counter("x")
	vals := map[string]float64{}
	for k := range m { // reads and map writes are order-independent
		vals[k] = float64(c.Value())
	}
	return vals
}

func sliceOK(w io.Writer, xs []int) {
	for _, x := range xs { // slices iterate in index order: no diagnostic
		fmt.Fprintln(w, x)
	}
}
