// Package sflow exercises the seedflow analyzer: seeds derived from range
// positions, map-order-dependent counters, or ambient state are diagnosed;
// seeds derived from config fields, elements, hashes, and constants are
// not.
package sflow

import (
	"os"
	"time"

	"beacon/internal/sim"
)

// Config mirrors the repository's seeded-config shape.
type Config struct {
	Seed      uint64
	FaultSeed uint64
}

type point struct {
	size uint64
	name string
}

// hashPoint stands in for calib.pointSeed-style identity hashing.
func hashPoint(base, size uint64) uint64 { return base ^ size*0x9e3779b97f4a7c15 }

func goodSeeds(cfg Config, points []point) {
	_ = sim.NewRNG(42)           // constant: fine
	_ = sim.NewRNG(cfg.Seed)     // config field: fine
	_ = sim.NewRNG(cfg.Seed + 1) // derived from config: fine
	for _, p := range points {   // element value, not position
		_ = sim.NewRNG(hashPoint(cfg.Seed, p.size)) // point-identity hash: fine
	}
	// A C-style counter outside any map range is deterministic.
	for i := 0; i < 4; i++ {
		_ = sim.NewRNG(cfg.Seed + uint64(i))
	}
}

func rangeIndexSeed(cfg Config, points []point) {
	for i := range points {
		_ = sim.NewRNG(cfg.Seed + uint64(i)) // want `sim\.NewRNG seed derives from range index "i": a position, not an identity`
	}
}

func mapOrderSeed(cfg Config, byName map[string]point) {
	n := uint64(0)
	for range byName {
		n++
		_ = sim.NewRNG(cfg.Seed + n) // want `sim\.NewRNG seed derives from "n", which is written under map iteration; its value depends on map order`
	}
}

func ambientSeed() {
	_ = sim.NewRNG(uint64(time.Now().UnixNano())) // want `sim\.NewRNG seed derives from ambient time\.Now; seeds must flow from config fields, point-identity hashes, or constants`
	_ = sim.NewRNG(uint64(os.Getpid()))           // want `sim\.NewRNG seed derives from ambient os\.Getpid`
}

// seed-named parameters are sinks even without sim.NewRNG in sight.
func runTrial(trialSeed uint64) uint64 { return trialSeed }

func seedParamSink(points []point) {
	for i := range points {
		_ = runTrial(uint64(i)) // want `seed parameter "trialSeed" of runTrial derives from range index "i"`
	}
}

// seed-named struct fields are sinks.
type injector struct {
	Seed uint64
}

func seedFieldSink(points []point) []injector {
	var out []injector
	for i := range points {
		out = append(out, injector{Seed: uint64(i)}) // want `seed field Seed derives from range index "i"`
	}
	return out
}

// derive forwards its parameter into a seed sink; the fact makes callers'
// arguments sinks too, one hop away.
func derive(base uint64) *sim.RNG {
	return sim.NewRNG(base ^ 0xabcdef)
}

func forwardedSink(cfg Config, points []point) {
	_ = derive(cfg.Seed) // config through the forwarding fact: fine
	for i := range points {
		_ = derive(uint64(i)) // want `seed parameter "base" of derive derives from range index "i"`
	}
}
