// Package nodeterm exercises the nodeterminism analyzer: wall-clock,
// global-state randomness, and process-identity calls are diagnosed in
// library code; seeded generators and duration arithmetic are not.
package nodeterm

import (
	crand "crypto/rand"
	"math/rand"
	randv2 "math/rand/v2"
	"os"
	"time"
)

func clock() time.Duration {
	start := time.Now()          // want `wall-clock call time\.Now`
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep`
	return time.Since(start)     // want `wall-clock call time\.Since`
}

func entropy() int {
	n := rand.Intn(10)   // want `global-state random call math/rand\.Intn`
	n += randv2.IntN(10) // want `global-state random call math/rand/v2\.IntN`
	n += os.Getpid()     // want `process-identity call os\.Getpid`
	var b [8]byte
	_, _ = crand.Read(b[:]) // want `crypto entropy call crypto/rand\.Read`
	return n
}

func ambient() string {
	dir, _ := os.UserCacheDir()      // want `ambient-environment call os\.UserCacheDir`
	host, _ := os.Hostname()         // want `ambient-environment call os\.Hostname`
	return dir + host + os.TempDir() // want `ambient-environment call os\.TempDir`
}

func seededOK() int {
	r := rand.New(rand.NewSource(1)) // constructors with explicit seeds are fine
	return r.Intn(10)
}

func durationsOK() time.Duration {
	d := 3 * time.Millisecond
	return d.Round(time.Millisecond) // methods on time values are fine
}
