package nodeterm

import "time"

// _test.go files are exempt: tests may measure wall time freely.
func testClock() time.Time {
	return time.Now()
}
