// Package facc exercises the floatacc analyzer: order-nondeterministic
// float accumulation is diagnosed; integer sums and sorted-order float
// sums are not.
package facc

func mapSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation over map iteration`
	}
	return sum
}

func mapProduct(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `float accumulation over map iteration`
	}
	return p
}

func intSumOK(m map[string]int) int {
	n := 0
	for _, v := range m { // integer addition is associative: no diagnostic
		n += v
	}
	return n
}

func sortedSumOK(m map[string]float64, keys []string) float64 {
	var sum float64
	for _, k := range keys { // slice iteration fixes the order
		sum += m[k]
	}
	return sum
}

func loopLocalOK(m map[string]float64) float64 {
	var last float64
	for _, v := range m {
		scratch := 0.0
		scratch += v // loop-local: each iteration's sum is independent
		last = scratch
	}
	return last
}

func goroutineSum(parts []float64) float64 {
	var total float64
	for i := range parts {
		go func(i int) {
			total += parts[i] // want `float accumulation into shared state from a goroutine`
		}(i)
	}
	return total
}
