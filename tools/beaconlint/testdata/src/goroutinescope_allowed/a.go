// Package runnerx is loaded under a beacon/internal/runner/... import
// path: the pool implementation owns raw concurrency, so nothing here is
// diagnosed.
package runnerx

import "sync"

func fanOut(fns []func()) {
	var wg sync.WaitGroup
	done := make(chan struct{})
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
	close(done)
}
