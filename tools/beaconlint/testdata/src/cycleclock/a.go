// Package cclock exercises the cycleclock analyzer: constant negative
// delays and discarded Engine.Run/RunUntil errors are diagnosed.
package cclock

import "beacon/internal/sim"

const lookback = 3

func bad(e *sim.Engine) {
	e.Schedule(-5, func() {})        // want `negative delay -5 passed to \(\*sim\.Engine\)\.Schedule`
	e.Schedule(-lookback, func() {}) // want `negative delay -3 passed to \(\*sim\.Engine\)\.Schedule`
	e.Run()                          // want `error result of \(\*sim\.Engine\)\.Run discarded`
	e.RunUntil(100)                  // want `error result of \(\*sim\.Engine\)\.RunUntil discarded`
	cycles, _ := e.Run()             // want `error result of \(\*sim\.Engine\)\.Run assigned to the blank identifier`
	_ = cycles
}

func good(e *sim.Engine) (sim.Cycle, error) {
	e.Schedule(5, func() {})
	e.Schedule(0, func() {})
	if _, err := e.RunUntil(50); err != nil { // error checked: no diagnostic
		return 0, err
	}
	return e.Run() // results propagate to the caller: no diagnostic
}

func variableDelayOK(e *sim.Engine, d sim.Cycles) {
	// Non-constant delays are the engine's runtime panic to enforce.
	e.Schedule(d, func() {})
}
