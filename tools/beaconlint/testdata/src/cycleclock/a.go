// Package cclock exercises the cycleclock analyzer: constant negative
// delays and discarded Engine.Run/RunUntil errors are diagnosed.
package cclock

import "beacon/internal/sim"

const lookback = 3

func bad(e *sim.Engine) {
	e.Schedule(-5, func() {})        // want `negative delay -5 passed to \(\*sim\.Engine\)\.Schedule`
	e.Schedule(-lookback, func() {}) // want `negative delay -3 passed to \(\*sim\.Engine\)\.Schedule`
	e.Run()                          // want `error result of \(\*sim\.Engine\)\.Run discarded`
	e.RunUntil(100)                  // want `error result of \(\*sim\.Engine\)\.RunUntil discarded`
	cycles, _ := e.Run()             // want `error result of \(\*sim\.Engine\)\.Run assigned to the blank identifier`
	_ = cycles
}

func good(e *sim.Engine) (sim.Cycle, error) {
	e.Schedule(5, func() {})
	e.Schedule(0, func() {})
	if _, err := e.RunUntil(50); err != nil { // error checked: no diagnostic
		return 0, err
	}
	return e.Run() // results propagate to the caller: no diagnostic
}

func variableDelayOK(e *sim.Engine, d sim.Cycles) {
	// Non-constant delays are the engine's runtime panic to enforce.
	e.Schedule(d, func() {})
}

// Zero-value construction: the engine's pending-event queue only exists
// after NewEngine, so every zero-value path is diagnosed.

var pkgLevelEngine sim.Engine // want `variable declared with value type sim\.Engine`

type machine struct {
	eng sim.Engine // want `struct field with value type sim\.Engine`
}

type machineOK struct {
	eng *sim.Engine // pointer field filled by NewEngine: no diagnostic
}

func zeroValueConstruction() {
	var e sim.Engine        // want `variable declared with value type sim\.Engine`
	_ = &sim.Engine{}       // want `sim\.Engine composite literal`
	_ = new(sim.Engine)     // want `new\(sim\.Engine\) builds an unusable zero-value engine`
	ok := sim.NewEngine()   // constructor: no diagnostic
	var okPtr *sim.Engine   // pointer variable: no diagnostic
	okPtr = sim.NewEngine() // assignment of a constructed engine: no diagnostic
	_, _, _, _ = e, ok, okPtr, pkgLevelEngine
}
