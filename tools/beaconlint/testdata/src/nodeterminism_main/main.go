// Command packages are exempt from nodeterminism: CLIs report wall time.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
