// Package ewrap exercises the errwrap analyzer: identity comparisons
// against sentinels and %v/%s wrapping of sentinels are diagnosed;
// errors.Is, %w, and nil checks are not.
package ewrap

import (
	"errors"
	"fmt"
)

// ErrCorrupt and errInternal are sentinels: package-level error variables.
var (
	ErrCorrupt  = errors.New("ewrap: corrupt")
	errInternal = errors.New("ewrap: internal")
)

func badComparison(err error) bool {
	if err == ErrCorrupt { // want `error compared against sentinel ErrCorrupt with ==/!=; a sentinel wrapped with %w never compares equal — use errors\.Is`
		return true
	}
	return err != errInternal // want `error compared against sentinel errInternal with ==/!=`
}

func badSwitch(err error) string {
	switch err {
	case ErrCorrupt: // want `switch case compares error against sentinel ErrCorrupt by identity; a wrapped ErrCorrupt never matches — use if errors\.Is\(err, ErrCorrupt\)`
		return "corrupt"
	case nil:
		return "ok"
	}
	return "other"
}

func badWrap(path string) error {
	return fmt.Errorf("open %s: %v", path, ErrCorrupt) // want `sentinel ErrCorrupt passed to fmt\.Errorf through %v; its identity is erased and errors\.Is stops matching — wrap with %w`
}

func badWrapS(path string) error {
	return fmt.Errorf("open %s: %s", path, errInternal) // want `sentinel errInternal passed to fmt\.Errorf through %s`
}

// Width, precision, and '*' shift argument positions; the parse must track
// them to land on the sentinel.
func badWrapStarred(n int) error {
	return fmt.Errorf("after %*d retries: %v", 8, n, ErrCorrupt) // want `sentinel ErrCorrupt passed to fmt\.Errorf through %v`
}

func goodUsage(err error, path string) error {
	if errors.Is(err, ErrCorrupt) { // the sanctioned match
		return nil
	}
	if err == nil { // nil checks are not identity matches
		return nil
	}
	if wrapped := fmt.Errorf("open %s: %w", path, ErrCorrupt); wrapped != nil { // %w keeps identity
		return wrapped
	}
	// Comparing two non-sentinel errors is outside the contract.
	other := errors.New("local")
	if err == other {
		return nil
	}
	// A sentinel under %v in a plain message context still erases
	// identity, but %d/%q of non-errors never trips the parse.
	return fmt.Errorf("retry %d %q: %w", 3, path, err)
}
