// Package mname exercises the metricname analyzer: compile-time parts of
// metric names registered on obs.Registry must match [a-z0-9._]; dynamic
// parts (component names) are allowed, as are value verbs in Sprintf
// format strings.
package mname

import (
	"fmt"

	"beacon/internal/obs"
)

const goodName = "core.tasks_completed"
const badName = "core.Tasks"

func registrations(reg *obs.Registry, name string) {
	// Plain literals and named constants in the convention charset.
	reg.Counter("dram.reads")
	reg.Counter(goodName)
	reg.Gauge("engine.pending_events", func() float64 { return 0 })
	reg.Histogram("core.step_latency_cycles", nil)

	// Dynamic component names spliced between clean literals.
	reg.Gauge("cxl."+name+".bytes_moved", func() float64 { return 0 })
	prefix := "ndp." + name + "."
	reg.Gauge(prefix+"backlog", func() float64 { return 0 })

	// Sprintf with value verbs: literal text checked, verbs pass.
	reg.Gauge(fmt.Sprintf("dram.s%d.d%d.reads", 0, 1), func() float64 { return 0 })
	reg.Counter(fmt.Sprintf("fault.%s.injected", name))

	// Uppercase in a literal or constant.
	reg.Counter("core.Tasks") // want `metric name "core.Tasks": character 'T' outside`
	reg.Counter(badName)      // want `metric name "core.Tasks": character 'T' outside`

	// Hyphens and spaces belong to dynamic component names only.
	reg.Gauge("dram-reads", func() float64 { return 0 })                // want `character '-' outside`
	reg.Gauge("queue depth", func() float64 { return 0 })               // want `character ' ' outside`
	reg.Histogram("core.latency/cycles", nil)                           // want `character '/' outside`
	reg.Gauge("link."+name+".busy-cycles", func() float64 { return 0 }) // want `character '-' outside`

	// Sprintf: bad literal text and non-value verbs.
	reg.Gauge(fmt.Sprintf("ndp %s.backlog", name), func() float64 { return 0 }) // want `character ' ' outside`
	reg.Gauge(fmt.Sprintf("ndp.%q.backlog", name), func() float64 { return 0 }) // want `verb %q does not survive`
	reg.Counter(fmt.Sprintf("pct.%%.used"))                                     // want `verb %% does not survive`
}
