// Package direct exercises //beaconlint:allow handling: a directive with a
// reason suppresses (inline or from the line above), a directive without a
// reason is itself an error, and a stale or malformed directive is
// reported.
package direct

import "time"

func suppressedInline() time.Time {
	return time.Now() //beaconlint:allow nodeterminism fixture: provenance only
}

func suppressedFromAbove() time.Time {
	//beaconlint:allow nodeterminism fixture: provenance only
	return time.Now()
}

func missingReason() time.Time {
	return time.Now() //beaconlint:allow nodeterminism // want `directive has no reason` `wall-clock call time\.Now`
}

func staleDirective() int {
	x := 1 //beaconlint:allow nodeterminism nothing left to excuse // want `stale beaconlint:allow: no nodeterminism diagnostic here anymore`
	return x
}

func unknownAnalyzer() time.Time {
	return time.Now() //beaconlint:allow nosuchcheck fixture reason // want `unknown analyzer "nosuchcheck"` `wall-clock call time\.Now`
}

func namesNoAnalyzer() int {
	y := 2 //beaconlint:allow // want `names no analyzer`
	return y
}

// The dataflow-backed analyzers participate in directive handling like any
// other: reasoned suppressions hold, stale ones are reported by name.

func suppressedUnitflow(busyCycles int64, idleSeconds float64) float64 {
	//beaconlint:allow unitflow fixture: cross-unit sum is the point here
	return float64(busyCycles) + idleSeconds
}

func staleUnitflow(busyCycles int64) int64 {
	return busyCycles + 1 //beaconlint:allow unitflow nothing to excuse // want `stale beaconlint:allow: no unitflow diagnostic here anymore`
}

func staleSeedflow(seed uint64) uint64 {
	return seed //beaconlint:allow seedflow nothing to excuse // want `stale beaconlint:allow: no seedflow diagnostic here anymore`
}

func staleErrwrap(err error) error {
	return err //beaconlint:allow errwrap nothing to excuse // want `stale beaconlint:allow: no errwrap diagnostic here anymore`
}
