// Package gscope exercises the goroutinescope analyzer outside the
// allowed packages: raw fan-out primitives are diagnosed.
package gscope

import "sync"

func spawn(fns []func()) {
	var wg sync.WaitGroup   // want `sync\.WaitGroup outside internal/runner`
	ch := make(chan int, 1) // want `channel creation outside internal/runner`
	for _, fn := range fns {
		go fn() // want `go statement outside internal/runner`
	}
	<-ch
	wg.Wait()
}

func mutexOK() {
	var mu sync.Mutex // plain mutexes are not fan-out; no diagnostic
	mu.Lock()
	defer mu.Unlock()
}
