// Package b violates unit and seed discipline in ways only visible
// through package a's dataflow facts.
package b

import "example.com/factmod/a"

// Mix adds cycles to a.Elapsed's seconds; the mismatch is only knowable
// from Elapsed's body-derived result-unit fact.
func Mix(busyCycles int64) float64 {
	return float64(busyCycles) + a.Elapsed(4)
}

// Seeds passes a range index to a.Forward, which forwards it into a seed;
// the sink is only knowable from Forward's seed-forwarding fact.
func Seeds(points []uint64) {
	for i := range points {
		a.Forward(uint64(i))
	}
}
