module example.com/factmod

go 1.22
