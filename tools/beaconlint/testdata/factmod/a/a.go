// Package a exports functions whose unit and seed behavior is visible
// only in their bodies — callers in package b can be checked only if the
// dataflow facts computed here flow across the package boundary.
package a

const step = 1.25e-9

// Elapsed returns the duration of n steps. Neither the name nor the
// signature carries a unit; the seconds fact comes from the body.
func Elapsed(n int) float64 {
	totalSeconds := float64(n) * step
	return totalSeconds
}

func consume(seed uint64) uint64 { return seed }

// Forward forwards base into a seed sink; the fact makes callers'
// arguments seed sinks too.
func Forward(base uint64) uint64 {
	return consume(base)
}
