// Package load turns package patterns into type-checked syntax without
// depending on golang.org/x/tools/go/packages. It drives the go command for
// metadata (`go list -json`) and for compiled export data
// (`go list -export`), parses the target packages' sources itself, and
// type-checks them with the standard library's gc export-data importer.
//
// The resulting Package values carry everything beaconlint's analyzers
// need: syntax with comments, a *types.Package, and a fully populated
// *types.Info. Target packages are checked from source; their dependencies
// are imported from export data, so a whole-module run only parses the
// module's own files.
package load

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"beacon/tools/beaconlint/analysis"
)

// Package is one unit of analysis: either a module package augmented with
// its in-package test files, or an external (_test) test package.
type Package struct {
	// Path is the import path ("_test"-suffixed for external test pkgs).
	Path string
	// Imports are the import paths this unit depends on (test imports
	// included; external test packages list the package under test). The
	// driver topologically orders a run with them so cross-package facts
	// flow dependency-first.
	Imports []string
	// Fset is the shared file set positions resolve against.
	Fset *token.FileSet
	// Files is the parsed syntax, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info is the type-checker's facts about Files.
	Info *types.Info
}

// Pass adapts the package for one analyzer, routing diagnostics to report
// and cross-package facts to facts (which may be nil).
func (p *Package) Pass(a *analysis.Analyzer, facts analysis.FactStore, report func(analysis.Diagnostic)) *analysis.Pass {
	return &analysis.Pass{
		Analyzer:  a,
		Fset:      p.Fset,
		Files:     p.Files,
		Pkg:       p.Types,
		PkgPath:   p.Path,
		TypesInfo: p.Info,
		Report:    report,
		Facts:     facts,
	}
}

// TopoSort orders pkgs dependency-first (a package after everything it
// imports), stably: ties keep the input's relative order. The driver runs
// analyzers in this order so facts exported by a dependency are visible
// when its importers are checked.
func TopoSort(pkgs []*Package) []*Package {
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	out := make([]*Package, 0, len(pkgs))
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		switch state[p.Path] {
		case 1, 2:
			return // cycle (impossible in Go) or already emitted
		}
		state[p.Path] = 1
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		state[p.Path] = 2
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	Standard     bool
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
	Error        *struct{ Err string }
}

// Config controls a Load.
type Config struct {
	// Dir is the module directory go commands run in ("" = cwd).
	Dir string
	// Tests selects whether _test.go files are loaded and external test
	// packages produced.
	Tests bool
	// Fset receives all parsed files; a fresh set is made when nil.
	Fset *token.FileSet
}

// Load resolves patterns to packages and type-checks each from source.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	if cfg.Fset == nil {
		cfg.Fset = token.NewFileSet()
	}
	targets, err := goList(cfg.Dir, nil, patterns...)
	if err != nil {
		return nil, err
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("load: no packages match %v", patterns)
	}

	// Collect every import path any target (or its test files) mentions,
	// then resolve export data for all of them and their dependencies in
	// one go invocation.
	need := map[string]bool{}
	for _, t := range targets {
		need[t.ImportPath] = true
		for _, lists := range [][]string{t.Imports, t.TestImports, t.XTestImports} {
			for _, imp := range lists {
				need[imp] = true
			}
		}
	}
	delete(need, "unsafe") // no export data; the gc importer special-cases it
	delete(need, "C")
	paths := make([]string, 0, len(need))
	for p := range need {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	exported, err := goList(cfg.Dir, []string{"-export", "-deps"}, paths...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range exported {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	imp := newExportImporter(cfg.Fset, exports)
	var out []*Package
	for _, t := range targets {
		files := append([]string{}, t.GoFiles...)
		if cfg.Tests {
			files = append(files, t.TestGoFiles...)
		}
		pkg, err := check(cfg.Fset, imp, t.Dir, t.ImportPath, files)
		if err != nil {
			return nil, err
		}
		pkg.Imports = append(pkg.Imports, t.Imports...)
		if cfg.Tests {
			pkg.Imports = append(pkg.Imports, t.TestImports...)
		}
		out = append(out, pkg)
		if cfg.Tests && len(t.XTestGoFiles) > 0 {
			// The external test package imports the package under test;
			// resolve that import to the source-checked (test-augmented)
			// package rather than export data, so exported test helpers
			// declared in _test.go files are visible.
			ximp := &overrideImporter{base: imp, override: map[string]*types.Package{t.ImportPath: pkg.Types}}
			xpkg, err := check(cfg.Fset, ximp, t.Dir, t.ImportPath+"_test", t.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xpkg.Imports = append(append(xpkg.Imports, t.XTestImports...), t.ImportPath)
			out = append(out, xpkg)
		}
	}
	return out, nil
}

// LoadFiles parses and type-checks an explicit file list as one package with
// the given import path, importing dependencies from exports (a map from
// import path to export-data file, e.g. from ExportMap). The analysistest
// harness uses it for testdata fixtures, which live outside the module.
func LoadFiles(fset *token.FileSet, importPath string, files []string, exports map[string]string) (*Package, error) {
	imp := newExportImporter(fset, exports)
	return check(fset, imp, "", importPath, files)
}

// ExportMap resolves export-data files for the given import paths and all
// their dependencies, running go from dir.
func ExportMap(dir string, paths ...string) (map[string]string, error) {
	pkgs, err := goList(dir, []string{"-export", "-deps"}, paths...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// NewInfo returns a types.Info with every fact map analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}

func check(fset *token.FileSet, imp types.Importer, dir, importPath string, files []string) (*Package, error) {
	var syntax []*ast.File
	for _, name := range files {
		path := name
		if dir != "" && !filepath.IsAbs(name) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("load: %w", err)
		}
		syntax = append(syntax, f)
	}
	info := NewInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, syntax, info)
	if err != nil {
		return nil, fmt.Errorf("load: %s: %w", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: syntax, Types: tpkg, Info: info}, nil
}

// newExportImporter wires the standard gc importer to a path→file map of
// compiled export data produced by `go list -export`.
func newExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("load: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// overrideImporter resolves some import paths to already-checked packages
// and defers the rest to a base importer.
type overrideImporter struct {
	base     types.Importer
	override map[string]*types.Package
}

func (o *overrideImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := o.override[path]; ok {
		return pkg, nil
	}
	return o.base.Import(path)
}

func goList(dir string, flags []string, patterns ...string) ([]listPackage, error) {
	args := append([]string{"list", "-json"}, flags...)
	args = append(args, "--")
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("load: go list: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(&stdout)
	var pkgs []listPackage
	seen := map[string]bool{}
	for {
		var p listPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("load: go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("load: %s: %s", p.ImportPath, p.Error.Err)
		}
		if seen[p.ImportPath] {
			continue
		}
		seen[p.ImportPath] = true
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
