// Package directive implements the //beaconlint:allow escape hatch.
//
// A directive names the analyzers it silences and must carry a reason:
//
//	//beaconlint:allow nodeterminism wall-clock feeds progress output only
//	eng.Schedule(delay, fn) //beaconlint:allow cycleclock,maporder reason...
//
// Placement: on the flagged line itself (trailing comment) or on the line
// directly above it. The escape hatch is audited as strictly as the code:
//
//   - a directive without a reason is itself a diagnostic;
//   - a directive naming an analyzer that is not registered is a
//     diagnostic;
//   - a stale directive — one that silenced nothing — is a diagnostic, so
//     suppressions cannot outlive the code they excused.
package directive

import (
	"go/ast"
	"go/token"
	"sort"
	"strconv"
	"strings"

	"beacon/tools/beaconlint/analysis"
)

// Prefix introduces an allow directive.
const Prefix = "//beaconlint:allow"

// Directive is one parsed //beaconlint:allow comment.
type Directive struct {
	// Pos is the comment's position.
	Pos token.Pos
	// File and Line locate the comment for matching.
	File string
	Line int
	// Analyzers are the comma-separated analyzer names the directive
	// silences.
	Analyzers []string
	// Reason is the mandatory free-text justification.
	Reason string
	// used tracks, per analyzer name, whether the directive silenced at
	// least one diagnostic.
	used map[string]bool
}

// Collect parses all allow directives in files.
func Collect(fset *token.FileSet, files []*ast.File) []*Directive {
	var out []*Directive
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				if !strings.HasPrefix(c.Text, Prefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, Prefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //beaconlint:allowother
				}
				// A nested "//" ends the directive (so trailing commentary
				// and analysistest want-expectations don't become reason
				// text).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				d := &Directive{
					Pos:  c.Pos(),
					File: fset.Position(c.Pos()).Filename,
					Line: fset.Position(c.Pos()).Line,
					used: map[string]bool{},
				}
				if len(fields) > 0 {
					for _, name := range strings.Split(fields[0], ",") {
						if name != "" {
							d.Analyzers = append(d.Analyzers, name)
						}
					}
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Apply filters diags through the directives and appends the directives'
// own diagnostics (missing reason, unknown analyzer, stale). known is the
// set of registered analyzer names.
func Apply(fset *token.FileSet, dirs []*Directive, diags []analysis.Diagnostic, known map[string]bool) []analysis.Diagnostic {
	byLoc := map[string][]*Directive{}
	key := func(file string, line int) string {
		return file + "\x00" + strconv.Itoa(line)
	}
	for _, d := range dirs {
		byLoc[key(d.File, d.Line)] = append(byLoc[key(d.File, d.Line)], d)
	}

	var kept []analysis.Diagnostic
	for _, diag := range diags {
		pos := fset.Position(diag.Pos)
		suppressed := false
		// A directive matches from the flagged line or the line above.
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, d := range byLoc[key(pos.Filename, line)] {
				if d.Reason == "" {
					continue // defective directives never silence
				}
				for _, name := range d.Analyzers {
					if name == diag.Analyzer {
						d.used[name] = true
						suppressed = true
					}
				}
			}
		}
		if !suppressed {
			kept = append(kept, diag)
		}
	}

	for _, d := range dirs {
		switch {
		case len(d.Analyzers) == 0:
			kept = append(kept, analysis.Diagnostic{
				Pos:      d.Pos,
				Analyzer: "beaconlint",
				Message:  "beaconlint:allow directive names no analyzer; write //beaconlint:allow <analyzer> <reason>",
			})
		case d.Reason == "":
			kept = append(kept, analysis.Diagnostic{
				Pos:      d.Pos,
				Analyzer: "beaconlint",
				Message:  "beaconlint:allow directive has no reason; every suppression must say why (//beaconlint:allow <analyzer> <reason>)",
			})
		default:
			for _, name := range d.Analyzers {
				if !known[name] {
					kept = append(kept, analysis.Diagnostic{
						Pos:      d.Pos,
						Analyzer: "beaconlint",
						Message:  "beaconlint:allow names unknown analyzer " + strconv.Quote(name),
					})
					continue
				}
				if !d.used[name] {
					kept = append(kept, analysis.Diagnostic{
						Pos:      d.Pos,
						Analyzer: "beaconlint",
						Message:  "stale beaconlint:allow: no " + name + " diagnostic here anymore; delete the directive",
					})
				}
			}
		}
	}

	sort.SliceStable(kept, func(i, j int) bool {
		pi, pj := fset.Position(kept[i].Pos), fset.Position(kept[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return kept[i].Analyzer < kept[j].Analyzer
	})
	return kept
}
