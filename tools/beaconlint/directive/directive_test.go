package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func collectSrc(t *testing.T, src string) []*Directive {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "d.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return Collect(fset, []*ast.File{file})
}

func TestCollectParsing(t *testing.T) {
	src := `package p

var a = 1 //beaconlint:allow nodeterminism wall clock is provenance only
var b = 2 //beaconlint:allow cycleclock,maporder shared reason text
var c = 3 //beaconlint:allow nodeterminism reason // trailing commentary ignored
var d = 4 //beaconlint:allow
var e = 5 //beaconlint:allowother not a directive at all
`
	dirs := collectSrc(t, src)
	if len(dirs) != 4 {
		t.Fatalf("got %d directives, want 4", len(dirs))
	}
	if got := dirs[0].Analyzers; !reflect.DeepEqual(got, []string{"nodeterminism"}) {
		t.Errorf("dirs[0].Analyzers = %v", got)
	}
	if got := dirs[0].Reason; got != "wall clock is provenance only" {
		t.Errorf("dirs[0].Reason = %q", got)
	}
	if got := dirs[1].Analyzers; !reflect.DeepEqual(got, []string{"cycleclock", "maporder"}) {
		t.Errorf("dirs[1].Analyzers = %v", got)
	}
	if got := dirs[2].Reason; got != "reason" {
		t.Errorf("dirs[2].Reason = %q (nested // must end the directive)", got)
	}
	if dirs[3].Analyzers != nil || dirs[3].Reason != "" {
		t.Errorf("dirs[3] = %+v, want empty directive", dirs[3])
	}
}
