package main

import (
	"go/token"
	"path/filepath"
	"strings"
	"testing"

	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/analyzers"
	"beacon/tools/beaconlint/dataflow"
	"beacon/tools/beaconlint/load"
)

// factmodDir is a self-contained module (invisible to the enclosing
// build, as all of testdata is) whose package b violates unit and seed
// discipline in ways only visible through package a's dataflow facts.
var factmodDir = filepath.Join("testdata", "factmod")

// suiteDiagnostics mirrors the standalone driver: load, topo-sort, one
// shared fact store across the run.
func suiteDiagnostics(t *testing.T, patterns ...string) []analysis.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := load.Load(load.Config{Dir: factmodDir, Tests: false, Fset: fset}, patterns...)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	pkgs = load.TopoSort(pkgs)
	facts := dataflow.NewStore()
	known := analyzers.Names()
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := runSuite(pkg, facts, known)
		if err != nil {
			t.Fatalf("runSuite(%s): %v", pkg.Path, err)
		}
		all = append(all, diags...)
	}
	return all
}

// TestCrossPackageFacts proves unit and seed facts computed from package
// a's bodies reach call sites in package b through the shared store.
func TestCrossPackageFacts(t *testing.T) {
	diags := suiteDiagnostics(t, "./...")
	var unitHit, seedHit bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "unitflow" && strings.Contains(d.Message, "cycles and seconds mixed"):
			unitHit = true
		case d.Analyzer == "seedflow" && strings.Contains(d.Message, `seed parameter "base" of Forward derives from range index "i"`):
			seedHit = true
		default:
			t.Errorf("unexpected diagnostic: [%s] %s", d.Analyzer, d.Message)
		}
	}
	if !unitHit {
		t.Error("missing unitflow diagnostic: a.Elapsed's seconds fact did not reach package b")
	}
	if !seedHit {
		t.Error("missing seedflow diagnostic: a.Forward's seed-forwarding fact did not reach package b")
	}

	// Package a itself is clean: the facts describe it, they don't flag it.
	if diags := suiteDiagnostics(t, "./a"); len(diags) != 0 {
		t.Errorf("package a should be clean, got %v", diags)
	}

	// Control: with package a outside the run, its facts are never
	// computed and b's violations are invisible — the diagnostics above
	// really do come from cross-package facts.
	if diags := suiteDiagnostics(t, "./b"); len(diags) != 0 {
		t.Errorf("package b alone should report nothing (no facts), got %v", diags)
	}
}
