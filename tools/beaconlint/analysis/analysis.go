// Package analysis is a deliberately small, dependency-free re-creation of
// the golang.org/x/tools/go/analysis surface that beaconlint's analyzers
// program against. The repository vendors no third-party modules, so the
// driver (package main and package load) supplies what x/tools would:
// loaded syntax, type information, and diagnostic plumbing.
//
// Only the subset beaconlint needs exists: no facts, no suggested fixes,
// no analyzer dependencies. Keeping the shape of the x/tools API means the
// analyzers can migrate to the real framework mechanically if the module
// ever grows the dependency.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //beaconlint:allow directives. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// guards; the first line is the summary shown by -help.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics via
	// pass.Report. A non-nil error aborts the whole beaconlint run — it
	// means the analyzer itself failed, not that the code is wrong.
	Run func(*Pass) error
}

// FactStore is the cross-package fact plumbing the driver may supply.
// Facts attach analyzer knowledge to package-level objects and survive
// package boundaries: the standalone driver shares one store across a
// dependency-ordered run, the unitchecker driver serializes it through go
// vet's .vetx files. The canonical implementation is dataflow.Store.
type FactStore interface {
	// ExportFact records fact (a JSON-encodable value) for obj under the
	// analyzer's namespace.
	ExportFact(analyzer string, obj types.Object, fact any) error
	// ImportFact decodes the analyzer's fact for obj into fact (a
	// pointer) and reports whether one was found.
	ImportFact(analyzer string, obj types.Object, fact any) bool
}

// Pass carries one package's loaded state through an analyzer.
type Pass struct {
	// Analyzer is the analyzer being applied.
	Analyzer *Analyzer
	// Fset is the file set all syntax positions resolve against. One file
	// set is shared by every package in a beaconlint run.
	Fset *token.FileSet
	// Files is the package's parsed syntax, including in-package _test.go
	// files when the driver loads tests.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// PkgPath is the import path beaconlint attributes to the package.
	// External test packages get the suffix "_test" appended to the path
	// of the package under test.
	PkgPath string
	// TypesInfo holds the type-checker's facts about Files.
	TypesInfo *types.Info
	// Report records one diagnostic.
	Report func(Diagnostic)
	// Facts is the run's cross-package fact store; nil when the driver
	// supplies none (fact exports become no-ops, imports find nothing).
	Facts FactStore
}

// ExportObjectFact records fact for obj under this pass's analyzer name.
func (p *Pass) ExportObjectFact(obj types.Object, fact any) error {
	if p.Facts == nil {
		return nil
	}
	return p.Facts.ExportFact(p.Analyzer.Name, obj, fact)
}

// ImportObjectFact decodes this analyzer's fact for obj into fact (a
// pointer), reporting whether one exists.
func (p *Pass) ImportObjectFact(obj types.Object, fact any) bool {
	if p.Facts == nil {
		return false
	}
	return p.Facts.ImportFact(p.Analyzer.Name, obj, fact)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	// Pos is the position the finding anchors to.
	Pos token.Pos
	// Analyzer is the reporting analyzer's name (the driver fills it in).
	Analyzer string
	// Message describes the violation and, ideally, the fix.
	Message string
}

// Reportf formats and reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// Callee resolves the object a call expression invokes: a *types.Func for
// functions and methods, a *types.Builtin for append and friends, nil for
// calls through function-typed variables or type conversions.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}

// CalleeFunc is Callee narrowed to functions and methods.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn, _ := Callee(info, call).(*types.Func)
	return fn
}

// IsPkgFunc reports whether fn is the package-level function or method
// pkgPath.name (for methods, name is just the method name; use RecvNamed to
// constrain the receiver).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}

// RecvNamed returns the named type of fn's receiver (unwrapping pointers),
// or nil for package-level functions.
func RecvNamed(fn *types.Func) *types.Named {
	if fn == nil {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethod reports whether fn is a method named name on type pkgPath.typeName.
func IsMethod(fn *types.Func, pkgPath, typeName, name string) bool {
	if fn == nil || fn.Name() != name {
		return false
	}
	named := RecvNamed(fn)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == typeName
}

// WriterInterface is the io.Writer method set, constructed without importing
// io so analyzers can test arbitrary types against it via types.Implements.
var WriterInterface = func() *types.Interface {
	byteSlice := types.NewSlice(types.Typ[types.Byte])
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", byteSlice))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	write := types.NewFunc(token.NoPos, nil, "Write", sig)
	iface := types.NewInterfaceType([]*types.Func{write}, nil)
	iface.Complete()
	return iface
}()

// ImplementsWriter reports whether t or *t satisfies io.Writer.
func ImplementsWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	// The invalid type (e.g. TypeOf on a package qualifier) vacuously
	// "implements" every interface; it is never a writer.
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Invalid {
		return false
	}
	if types.Implements(t, WriterInterface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), WriterInterface)
	}
	return false
}

// DeclaredWithin reports whether obj's declaration lies inside [lo, hi].
// Analyzers use it to separate loop-local state (harmless) from state that
// outlives an iteration order-dependent loop.
func DeclaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() != token.NoPos && lo <= obj.Pos() && obj.Pos() <= hi
}
