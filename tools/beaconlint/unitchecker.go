// go vet -vettool mode. The go command drives a vet tool once per package:
// it writes a JSON "vet config" describing the package (sources, import
// map, export-data files for every dependency) and invokes the tool with
// that file as its only argument. The tool type-checks from the config,
// reports diagnostics on stderr with exit code 2, and must write the facts
// file the config names (beaconlint has no facts; an empty file satisfies
// the protocol).
//
// This mirrors golang.org/x/tools/go/analysis/unitchecker, which the
// module does not depend on.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"strings"

	"beacon/tools/beaconlint/analyzers"
	"beacon/tools/beaconlint/load"
)

// vetConfig is the subset of cmd/go's vet config beaconlint consumes.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

func unitcheckerMain(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "beaconlint: parsing %s: %v\n", cfgFile, err)
		return 1
	}
	// The facts file must exist even for packages we only visit as
	// dependencies.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "beaconlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// Route source-level import paths through the config's import map so
	// lookups hit the canonical export entries.
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}

	// Vet names test variants "pkg [pkg.test]" and "pkg_test [pkg.test]";
	// analyzers key package-path policy off the plain path.
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}

	pkg, err := load.LoadFiles(fset, path, cfg.GoFiles, exports)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		return 1
	}
	diags, err := runSuite(pkg, analyzers.Names())
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		return 1
	}
	exit := 0
	w := io.Writer(os.Stderr)
	for _, d := range diags {
		fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		exit = 2
	}
	return exit
}
