// go vet -vettool mode. The go command drives a vet tool once per package:
// it writes a JSON "vet config" describing the package (sources, import
// map, export-data files for every dependency, .vetx fact files its
// dependencies produced) and invokes the tool with that file as its only
// argument. The tool type-checks from the config, reports diagnostics on
// stderr with exit code 2, and must write the facts file the config names.
//
// Since the dataflow layer landed, the facts file is no longer empty: it
// carries the serialized dataflow.Store (unit and seed facts computed for
// this package plus everything inherited from its dependencies), so
// cross-package fact propagation works identically in vettool mode and
// standalone mode. Exit codes match the standalone driver: 0 clean, 1
// load/internal error, 2 findings.
//
// This mirrors golang.org/x/tools/go/analysis/unitchecker, which the
// module does not depend on.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"beacon/tools/beaconlint/analyzers"
	"beacon/tools/beaconlint/dataflow"
	"beacon/tools/beaconlint/load"
)

// vetConfig is the subset of cmd/go's vet config beaconlint consumes.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// modulePath scopes fact computation: only module packages produce facts,
// so VetxOnly visits to the standard library stay cheap.
const modulePath = "beacon"

func unitcheckerMain(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		return exitError
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "beaconlint: parsing %s: %v\n", cfgFile, err)
		return exitError
	}

	// Inherit facts from every dependency's .vetx file. Old empty files
	// and foreign content merge as nothing.
	facts := dataflow.NewStore()
	for _, path := range sortedValues(cfg.PackageVetx) {
		data, err := os.ReadFile(path)
		if err != nil {
			continue // a dependency outside the vet run; no facts to inherit
		}
		if err := facts.Merge(data); err != nil {
			fmt.Fprintln(os.Stderr, "beaconlint:", err)
			return exitError
		}
	}

	// Vet names test variants "pkg [pkg.test]" and "pkg_test [pkg.test]";
	// analyzers key package-path policy off the plain path.
	path := cfg.ImportPath
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}

	// Packages outside the module are only visited for their facts, and
	// the suite computes none for them: write the inherited store through
	// and stop. Module packages are analyzed even when VetxOnly — their
	// facts feed dependent packages — but report nothing.
	analyze := strings.HasPrefix(path, modulePath+"/") || path == modulePath
	var exit int
	if analyze {
		exit = analyzeUnit(&cfg, path, facts)
		if exit == exitError && cfg.SucceedOnTypecheckFailure {
			exit = exitClean
		}
	}
	if cfg.VetxOutput != "" {
		data, err := facts.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "beaconlint:", err)
			return exitError
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "beaconlint:", err)
			return exitError
		}
	}
	if cfg.VetxOnly {
		return exitClean
	}
	return exit
}

// analyzeUnit loads and checks one compilation unit, reporting
// diagnostics unless the config is facts-only.
func analyzeUnit(cfg *vetConfig, path string, facts *dataflow.Store) int {
	fset := token.NewFileSet()
	exports := map[string]string{}
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// Route source-level import paths through the config's import map so
	// lookups hit the canonical export entries.
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok {
			exports[src] = file
		}
	}

	pkg, err := load.LoadFiles(fset, path, cfg.GoFiles, exports)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		return exitError
	}
	diags, err := runSuite(pkg, facts, analyzers.Names())
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		return exitError
	}
	if cfg.VetxOnly {
		return exitClean
	}
	exit := exitClean
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		exit = exitFindings
	}
	return exit
}

// sortedValues returns m's values in key order, so fact merging (and any
// error it surfaces) is deterministic.
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
