package main

import (
	"path/filepath"
	"testing"

	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/analysistest"
	"beacon/tools/beaconlint/analyzers"
	"beacon/tools/beaconlint/analyzers/cycleclock"
	"beacon/tools/beaconlint/analyzers/errwrap"
	"beacon/tools/beaconlint/analyzers/floatacc"
	"beacon/tools/beaconlint/analyzers/goroutinescope"
	"beacon/tools/beaconlint/analyzers/maporder"
	"beacon/tools/beaconlint/analyzers/metricname"
	"beacon/tools/beaconlint/analyzers/nodeterminism"
	"beacon/tools/beaconlint/analyzers/seedflow"
	"beacon/tools/beaconlint/analyzers/unitflow"
)

// TestAnalyzers runs every analyzer against its golden fixture. Each
// fixture package carries `// want "regexp"` comments for the diagnostics
// that must appear; lines without a want comment must stay clean.
func TestAnalyzers(t *testing.T) {
	tests := []struct {
		fixture    string
		importPath string
		analyzers  []*analysis.Analyzer
		directives bool
	}{
		// Wall clock, global rand, crypto entropy, process identity.
		{"nodeterminism", "beacon/fixtures/nodeterm", []*analysis.Analyzer{nodeterminism.Analyzer}, false},
		// package main is exempt: cmd wiring may read the wall clock.
		{"nodeterminism_main", "beacon/fixtures/ndmain", []*analysis.Analyzer{nodeterminism.Analyzer}, false},
		// Order-dependent effects under map ranges, and the exemptions.
		{"maporder", "beacon/fixtures/mapord", []*analysis.Analyzer{maporder.Analyzer}, false},
		// Raw concurrency outside the sanctioned packages.
		{"goroutinescope", "beacon/fixtures/gscope", []*analysis.Analyzer{goroutinescope.Analyzer}, false},
		// The identical constructs are legal under internal/runner.
		{"goroutinescope_allowed", "beacon/internal/runner/runnerx", []*analysis.Analyzer{goroutinescope.Analyzer}, false},
		// Negative constant delays and dropped Run/RunUntil errors.
		{"cycleclock", "beacon/fixtures/cclock", []*analysis.Analyzer{cycleclock.Analyzer}, false},
		// Float accumulation under map iteration or from goroutines.
		{"floatacc", "beacon/fixtures/facc", []*analysis.Analyzer{floatacc.Analyzer}, false},
		// Metric-name charset at obs.Registry registration sites.
		{"metricname", "beacon/fixtures/mname", []*analysis.Analyzer{metricname.Analyzer}, false},
		// Cross-unit arithmetic, mis-unit assignments and arguments, raw
		// CyclePeriodSeconds references outside internal/sim.
		{"unitflow", "beacon/fixtures/uflow", []*analysis.Analyzer{unitflow.Analyzer}, false},
		// Seeds derived from range positions, map-order counters, or
		// ambient state; forwarding facts make callers' arguments sinks.
		{"seedflow", "beacon/fixtures/sflow", []*analysis.Analyzer{seedflow.Analyzer}, false},
		// Sentinel identity comparisons and %v/%s sentinel wrapping.
		{"errwrap", "beacon/fixtures/ewrap", []*analysis.Analyzer{errwrap.Analyzer}, false},
		// //beaconlint:allow: reasoned directives suppress; reasonless,
		// stale, unknown-analyzer, and empty directives are diagnostics.
		{"directives", "beacon/fixtures/direct", analyzers.All(), true},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.fixture, func(t *testing.T) {
			analysistest.Run(t, analysistest.Config{
				Dir:        filepath.Join("testdata", "src", tt.fixture),
				ImportPath: tt.importPath,
				Analyzers:  tt.analyzers,
				Directives: tt.directives,
				Known:      analyzers.Names(),
			})
		})
	}
}
