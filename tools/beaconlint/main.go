// Command beaconlint runs the repository's determinism analyzers.
//
// Standalone (the common entry point, also behind `make lint`):
//
//	go run ./tools/beaconlint ./...
//
// As a go vet tool (same diagnostics, vet's caching and per-package
// scheduling):
//
//	go build -o beaconlint.exe ./tools/beaconlint
//	go vet -vettool=$PWD/beaconlint.exe ./...
//
// The suite enforces invariants the test suite can only sample:
// nodeterminism (no wall clock / ambient entropy in simulator code),
// maporder (no order-dependent effects under map iteration),
// goroutinescope (all parallelism behind internal/runner's pool),
// cycleclock (no negative delays, no dropped Engine.Run errors),
// floatacc (no order-nondeterministic float accumulation), and
// metricname (constant, OpenMetrics-safe names at obs.Registry
// registration sites). Suppressions use
// //beaconlint:allow <analyzer> <reason>; see package directive.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"

	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/analyzers"
	"beacon/tools/beaconlint/directive"
	"beacon/tools/beaconlint/load"
)

func main() {
	// go vet probes its -vettool before use; answer the protocol first.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// The output feeds vet's content hash; any stable string works.
			fmt.Println("beaconlint version determinism-suite-1")
			return
		case args[0] == "-flags":
			fmt.Println("[]") // no tool-specific flags to forward
			return
		}
	}
	if n := len(args); n > 0 && len(args[n-1]) > 4 && args[n-1][len(args[n-1])-4:] == ".cfg" {
		os.Exit(unitcheckerMain(args[n-1]))
	}

	list := flag.Bool("list", false, "list registered analyzers and exit")
	noTests := flag.Bool("notests", false, "skip _test.go files and external test packages")
	flag.Parse()
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := load.Load(load.Config{Tests: !*noTests, Fset: fset}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		os.Exit(1)
	}

	known := analyzers.Names()
	exit := 0
	for _, pkg := range pkgs {
		diags, err := runSuite(pkg, known)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beaconlint:", err)
			os.Exit(1)
		}
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
			exit = 2
		}
	}
	os.Exit(exit)
}

// runSuite applies every analyzer to pkg and filters the result through the
// package's //beaconlint:allow directives.
func runSuite(pkg *load.Package, known map[string]bool) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers.All() {
		a := a
		pass := pkg.Pass(a, func(d analysis.Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	dirs := directive.Collect(pkg.Fset, pkg.Files)
	return directive.Apply(pkg.Fset, dirs, diags, known), nil
}
