// Command beaconlint runs the repository's determinism analyzers.
//
// Standalone (the common entry point, also behind `make lint`):
//
//	go run ./tools/beaconlint ./...
//
// As a go vet tool (same diagnostics, vet's caching and per-package
// scheduling):
//
//	go build -o beaconlint.exe ./tools/beaconlint
//	go vet -vettool=$PWD/beaconlint.exe ./...
//
// Exit codes are identical in both modes and pinned by CLI tests:
//
//	0 — clean: every package loaded and no diagnostics
//	1 — load or internal error (bad pattern, type error, broken config)
//	2 — findings: at least one diagnostic was reported
//
// With -json, each diagnostic is additionally emitted on stdout as one
// JSON object per line — {"file","line","col","analyzer","message"} — for
// CI problem matchers and tooling; the human-readable form stays on
// stderr either way.
//
// The suite enforces invariants the test suite can only sample:
// nodeterminism (no wall clock / ambient entropy in simulator code),
// maporder (no order-dependent effects under map iteration),
// goroutinescope (all parallelism behind internal/runner's pool),
// cycleclock (no negative delays, no dropped Engine.Run errors),
// floatacc (no order-nondeterministic float accumulation), metricname
// (constant, OpenMetrics-safe names at obs.Registry registration sites),
// unitflow (no cross-unit arithmetic; cycle<->seconds conversions only in
// internal/sim/time.go), seedflow (RNG seeds flow from config, point
// identity, or constants), and errwrap (errors.Is instead of sentinel ==,
// %w instead of %v for sentinel wrapping). The last three run on a shared
// type-aware dataflow layer whose cross-package facts flow
// dependency-first in standalone mode and through go vet's .vetx files in
// vettool mode. Suppressions use //beaconlint:allow <analyzer> <reason>;
// see package directive.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"

	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/analyzers"
	"beacon/tools/beaconlint/dataflow"
	"beacon/tools/beaconlint/directive"
	"beacon/tools/beaconlint/load"
)

// Exit codes, shared by the standalone and unitchecker drivers.
const (
	exitClean    = 0
	exitError    = 1
	exitFindings = 2
)

func main() {
	// go vet probes its -vettool before use; answer the protocol first.
	args := os.Args[1:]
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			// The output feeds vet's content hash; it must change when
			// the suite's behavior does, so caches invalidate.
			fmt.Println("beaconlint version determinism-suite-2-dataflow")
			return
		case args[0] == "-flags":
			fmt.Println("[]") // no tool-specific flags to forward
			return
		}
	}
	if n := len(args); n > 0 && len(args[n-1]) > 4 && args[n-1][len(args[n-1])-4:] == ".cfg" {
		os.Exit(unitcheckerMain(args[n-1]))
	}

	list := flag.Bool("list", false, "list registered analyzers and exit")
	noTests := flag.Bool("notests", false, "skip _test.go files and external test packages")
	jsonOut := flag.Bool("json", false, "also emit one JSON diagnostic object per line on stdout")
	flag.Parse()
	if *list {
		for _, a := range analyzers.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	fset := token.NewFileSet()
	pkgs, err := load.Load(load.Config{Tests: !*noTests, Fset: fset}, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beaconlint:", err)
		os.Exit(exitError)
	}

	// Dependency order, so facts exported by a package are in the store
	// before any importer is analyzed.
	pkgs = load.TopoSort(pkgs)
	facts := dataflow.NewStore()
	known := analyzers.Names()
	enc := json.NewEncoder(os.Stdout)
	exit := exitClean
	for _, pkg := range pkgs {
		diags, err := runSuite(pkg, facts, known)
		if err != nil {
			fmt.Fprintln(os.Stderr, "beaconlint:", err)
			os.Exit(exitError)
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pos, d.Analyzer, d.Message)
			if *jsonOut {
				if err := enc.Encode(jsonDiagnostic{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				}); err != nil {
					fmt.Fprintln(os.Stderr, "beaconlint:", err)
					os.Exit(exitError)
				}
			}
			exit = exitFindings
		}
	}
	os.Exit(exit)
}

// jsonDiagnostic is the -json wire form: one object per line.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// runSuite applies every analyzer to pkg and filters the result through the
// package's //beaconlint:allow directives.
func runSuite(pkg *load.Package, facts analysis.FactStore, known map[string]bool) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers.All() {
		a := a
		pass := pkg.Pass(a, facts, func(d analysis.Diagnostic) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		})
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	dirs := directive.Collect(pkg.Fset, pkg.Files)
	return directive.Apply(pkg.Fset, dirs, diags, known), nil
}
