// Package metricname enforces the metric-name charset at registration
// sites.
//
// Metric names registered on obs.Registry (Counter, Gauge, Histogram)
// become OpenMetrics families: the exposition writer sanitizes every
// byte outside [a-zA-Z0-9_:] to '_', so a name with spaces, uppercase or
// stray punctuation silently collides with its sanitized siblings and
// diverges between the JSON and OpenMetrics artifacts. The repository's
// convention is lowercase dotted names ([a-z0-9._]), with dynamic
// component names (which may contain hyphens) spliced in at runtime.
//
// The analyzer checks every compile-time-known part of the name
// argument: string literals and named constants must match [a-z0-9._],
// concatenation chains are checked piecewise, and fmt.Sprintf format
// strings are checked verb-aware (the literal text must obey the charset;
// only the value verbs %s %d %v %x %b %o %f %g %e survive sanitization
// losslessly). Purely dynamic parts — a component's Name() method, a
// prefix variable — pass: their content is the component's identity,
// sanitized at exposition time.
package metricname

import (
	"go/ast"
	"go/constant"
	"go/token"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the metricname analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "require [a-z0-9._] metric names at obs.Registry registration sites",
	Run:  run,
}

const obsPkg = "beacon/internal/obs"

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 1 {
				return true
			}
			fn := analysis.CalleeFunc(info, call)
			if analysis.IsMethod(fn, obsPkg, "Registry", "Counter") ||
				analysis.IsMethod(fn, obsPkg, "Registry", "Gauge") ||
				analysis.IsMethod(fn, obsPkg, "Registry", "Histogram") {
				checkNameExpr(pass, call.Args[0])
			}
			return true
		})
	}
	return nil
}

// checkNameExpr validates the compile-time-known parts of a metric-name
// expression.
func checkNameExpr(pass *analysis.Pass, e ast.Expr) {
	e = ast.Unparen(e)
	info := pass.TypesInfo
	// A fully constant expression (literal, named constant, constant
	// concatenation) is checked as one value.
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		checkText(pass, e.Pos(), constant.StringVal(tv.Value), false)
		return
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op == token.ADD {
			checkNameExpr(pass, e.X)
			checkNameExpr(pass, e.Y)
		}
	case *ast.CallExpr:
		// fmt.Sprintf: the format string is the compile-time part.
		if analysis.IsPkgFunc(analysis.CalleeFunc(info, e), "fmt", "Sprintf") && len(e.Args) >= 1 {
			if tv, ok := info.Types[ast.Unparen(e.Args[0])]; ok && tv.Value != nil &&
				tv.Value.Kind() == constant.String {
				checkText(pass, e.Args[0].Pos(), constant.StringVal(tv.Value), true)
			}
		}
		// Other calls (component Name() methods) are dynamic: allowed.
	}
	// Idents, selectors, index expressions: dynamic parts, allowed.
}

// checkText validates one compile-time string fragment. With verbs set
// (fmt.Sprintf format strings), % starts a verb: flags/width are skipped
// and the verb letter must be a value verb whose output survives
// OpenMetrics sanitization (no %q quoting, no %% literal percent).
func checkText(pass *analysis.Pass, pos token.Pos, s string, verbs bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if verbs && c == '%' {
			j := i + 1
			for j < len(s) && (s[j] == '+' || s[j] == '-' || s[j] == '#' || s[j] == ' ' ||
				s[j] == '0' || (s[j] >= '1' && s[j] <= '9') || s[j] == '.' || s[j] == '*') {
				j++
			}
			if j >= len(s) {
				pass.Reportf(pos, "metric name format %q: dangling %% at end", s)
				return
			}
			switch s[j] {
			case 's', 'd', 'v', 'x', 'X', 'b', 'o', 'f', 'g', 'e', 'c':
				i = j
				continue
			default:
				pass.Reportf(pos, "metric name format %q: verb %%%c does not survive OpenMetrics sanitization (use a value verb like %%s or %%d)", s, s[j])
				return
			}
		}
		if (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '.' || c == '_' {
			continue
		}
		pass.Reportf(pos, "metric name %q: character %q outside [a-z0-9._]; it would be rewritten to '_' by the OpenMetrics writer and can collide with other metrics", s, rune(c))
		return
	}
}
