// Package unitflow enforces unit safety across the simulator's physics.
//
// The repository's quantities live in five dimensions — cycles, seconds,
// bytes, bytes-per-cycle, and GB/s — and every conversion between cycles
// and seconds is confined to internal/sim/time.go so the clock can never
// silently diverge between packages (DESIGN.md §4d). The analyzer tags
// expressions with units from three evidence sources, in priority order:
//
//   - types: anything typed beacon/internal/sim.Cycle is cycles;
//   - calls: sim.Seconds/SecondsOf return seconds, sim.GBPerSecond and
//     sim.BytesPerCycleToGBs return GB/s, plus cross-package result-unit
//     facts computed from function bodies by the dataflow layer;
//   - names: the repository's naming conventions (SetupSeconds,
//     FAWStallCycles, MigratedBytes, migrationBytesPerCycle, GBPerSec)
//     applied to fields, constants, locals, and parameters.
//
// Units propagate through local assignment chains (the dataflow
// assignment graph), additive arithmetic, and the two products the
// lattice can name (bytes/cycle x cycles, bytes / bytes-per-cycle). The
// analyzer reports:
//
//   - cross-unit + - or comparison (cycles compared against seconds);
//   - a value of one unit assigned to a variable, field, or composite
//     literal key named for another;
//   - a value of one unit passed to a parameter named or typed for
//     another (cycles into a seconds parameter);
//   - any reference to sim.CyclePeriodSeconds outside package
//     beacon/internal/sim — raw cycle<->seconds math belongs in
//     internal/sim/time.go; call sim.Seconds, sim.SecondsOf or
//     sim.CyclesIn instead.
package unitflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/dataflow"
)

// Analyzer is the unitflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "unitflow",
	Doc:  "forbid cross-unit arithmetic and raw cycle<->seconds conversions outside internal/sim/time.go",
	Run:  run,
}

const simPkg = "beacon/internal/sim"

// UnitFact records the result units of a function, inferred from its body
// by the defining package's pass and consumed at call sites in importing
// packages.
type UnitFact struct {
	// Results maps result index to unit name (Unit.String).
	Results map[int]string `json:"r,omitempty"`
}

// checker carries one package's pass state.
type checker struct {
	pass *analysis.Pass
	// indexes is the per-function assignment graph.
	indexes map[*ast.FuncDecl]*dataflow.FuncIndex
	// local holds result units for this package's own functions, so
	// same-package call sites resolve without the fact store.
	local map[*types.Func]UnitFact
	// depth bounds exprUnit recursion through assignment chains.
	depth int
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		indexes: map[*ast.FuncDecl]*dataflow.FuncIndex{},
		local:   map[*types.Func]UnitFact{},
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			c.indexes[fd] = dataflow.IndexFunc(pass.TypesInfo, fd.Type, fd.Body)
		}
	}
	// Phase 1: infer result units from bodies and export them as facts,
	// so importing packages (and phase 2 below) see through calls.
	// Iteration goes by file order, not over the index map, so any
	// diagnostics keep a deterministic order.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				c.inferResults(fd, c.indexes[fd])
			}
		}
	}
	// Phase 2: check arithmetic, assignments, composite literals, call
	// arguments, and conversion locality.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				c.checkBody(fd)
				continue
			}
			// Package-level declarations have no assignment graph.
			ast.Inspect(decl, func(n ast.Node) bool {
				c.checkNode(nil, n)
				return true
			})
		}
	}
	return nil
}

// inferResults computes fn's result units from its return statements and
// exports a fact when any are known.
func (c *checker) inferResults(fd *ast.FuncDecl, idx *dataflow.FuncIndex) {
	fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil || fd.Body == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return
	}
	n := sig.Results().Len()
	units := make([]dataflow.Unit, n)
	conflict := make([]bool, n)
	// Named results and the function's own name seed the inference.
	for i := 0; i < n; i++ {
		r := sig.Results().At(i)
		if dataflow.Numeric(r.Type()) && r.Name() != "" {
			units[i] = dataflow.NameUnit(r.Name())
		}
	}
	if n == 1 && units[0] == dataflow.UnitUnknown && dataflow.Numeric(sig.Results().At(0).Type()) {
		units[0] = dataflow.NameUnit(fn.Name())
	}
	ast.Inspect(fd.Body, func(node ast.Node) bool {
		if _, ok := node.(*ast.FuncLit); ok {
			return false // a literal's returns are its own
		}
		ret, ok := node.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != n {
			return true
		}
		for i, res := range ret.Results {
			u := c.exprUnit(idx, res)
			if u == dataflow.UnitUnknown {
				continue
			}
			switch units[i] {
			case dataflow.UnitUnknown:
				units[i] = u
			case u:
			default:
				conflict[i] = true
			}
		}
		return true
	})
	fact := UnitFact{Results: map[int]string{}}
	for i, u := range units {
		if u != dataflow.UnitUnknown && !conflict[i] && dataflow.Numeric(sig.Results().At(i).Type()) {
			fact.Results[i] = u.String()
		}
	}
	if len(fact.Results) == 0 {
		return
	}
	c.local[fn] = fact
	if err := c.pass.ExportObjectFact(fn, fact); err != nil {
		// Encoding a map[int]string cannot fail; surface anyway.
		c.pass.Reportf(fd.Pos(), "unitflow: exporting fact: %v", err)
	}
}

// checkBody walks one function body with its assignment graph.
func (c *checker) checkBody(fd *ast.FuncDecl) {
	idx := c.indexes[fd]
	ast.Inspect(fd, func(n ast.Node) bool {
		c.checkNode(idx, n)
		return true
	})
}

// checkNode applies every unitflow rule that anchors at n.
func (c *checker) checkNode(idx *dataflow.FuncIndex, n ast.Node) {
	info := c.pass.TypesInfo
	switch n := n.(type) {
	case *ast.BinaryExpr:
		switch n.Op {
		case token.ADD, token.SUB, token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
			if !dataflow.Numeric(info.TypeOf(n.X)) || !dataflow.Numeric(info.TypeOf(n.Y)) {
				return
			}
			ux, uy := c.exprUnit(idx, n.X), c.exprUnit(idx, n.Y)
			if _, ok := dataflow.AddUnits(ux, uy); !ok {
				verb := "mixed in arithmetic"
				if n.Op != token.ADD && n.Op != token.SUB {
					verb = "compared"
				}
				c.pass.Reportf(n.OpPos, "%s and %s %s; convert through internal/sim/time.go first", ux, uy, verb)
			}
		}
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return
		}
		for i := range n.Lhs {
			lu := c.declaredUnit(n.Lhs[i])
			if lu == dataflow.UnitUnknown {
				continue
			}
			ru := c.exprUnit(idx, n.Rhs[i])
			if ru != dataflow.UnitUnknown && ru != lu {
				c.pass.Reportf(n.Rhs[i].Pos(), "%s value assigned to %s-named %s", ru, lu, exprLabel(n.Lhs[i]))
			}
		}
	case *ast.CompositeLit:
		t := info.TypeOf(n)
		if t == nil {
			return
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if _, ok := t.Underlying().(*types.Struct); !ok {
			return
		}
		for _, el := range n.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			lu := c.declaredUnit(key)
			if lu == dataflow.UnitUnknown {
				continue
			}
			ru := c.exprUnit(idx, kv.Value)
			if ru != dataflow.UnitUnknown && ru != lu {
				c.pass.Reportf(kv.Value.Pos(), "%s value assigned to %s-named field %s", ru, lu, key.Name)
			}
		}
	case *ast.CallExpr:
		c.checkCall(idx, n)
	case *ast.Ident:
		// Covers both spellings: the Sel of a qualified reference is
		// itself visited as an Ident by the inspection.
		c.checkPeriodRef(n, info.Uses[n])
	}
}

// checkPeriodRef flags references to sim.CyclePeriodSeconds outside
// package sim: the raw constant is the one escape from unit discipline,
// and internal/sim/time.go is its only sanctioned home.
func (c *checker) checkPeriodRef(at *ast.Ident, obj types.Object) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	if obj.Pkg().Path() != simPkg || obj.Name() != "CyclePeriodSeconds" {
		return
	}
	if c.pass.PkgPath == simPkg || c.pass.PkgPath == simPkg+"_test" {
		return
	}
	c.pass.Reportf(at.Pos(), "raw cycle<->seconds conversion via sim.CyclePeriodSeconds outside internal/sim/time.go; use sim.Seconds, sim.SecondsOf or sim.CyclesIn")
}

// checkCall compares argument units against parameter units (declared by
// type, by name convention, or — for same-module callees — by fact).
func (c *checker) checkCall(idx *dataflow.FuncIndex, call *ast.CallExpr) {
	fn := analysis.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi < 0 || pi >= sig.Params().Len() {
			continue
		}
		param := sig.Params().At(pi)
		pu := c.paramUnit(param)
		if pu == dataflow.UnitUnknown {
			continue
		}
		au := c.exprUnit(idx, arg)
		if au != dataflow.UnitUnknown && au != pu {
			c.pass.Reportf(arg.Pos(), "%s value passed to %s parameter %q of %s", au, pu, param.Name(), fn.Name())
		}
	}
}

// paramUnit resolves a parameter's declared unit: the sim.Cycle type
// first, then the name convention.
func (c *checker) paramUnit(param *types.Var) dataflow.Unit {
	if u := typeUnit(param.Type()); u != dataflow.UnitUnknown {
		return u
	}
	if !dataflow.Numeric(param.Type()) {
		return dataflow.UnitUnknown
	}
	return dataflow.NameUnit(param.Name())
}

// declaredUnit is the unit an lvalue claims by type or name — never by
// dataflow, so assignment checks compare claim against evidence.
func (c *checker) declaredUnit(e ast.Expr) dataflow.Unit {
	info := c.pass.TypesInfo
	e = ast.Unparen(e)
	if u := typeUnit(info.TypeOf(e)); u != dataflow.UnitUnknown {
		return u
	}
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	default:
		return dataflow.UnitUnknown
	}
	if !dataflow.Numeric(info.TypeOf(e)) {
		return dataflow.UnitUnknown
	}
	return dataflow.NameUnit(name)
}

// maxDepth bounds unit propagation through assignment chains.
const maxDepth = 24

// exprUnit computes the unit of e, consulting types, known conversion
// helpers, facts, names, local assignment chains, and unit arithmetic.
func (c *checker) exprUnit(idx *dataflow.FuncIndex, e ast.Expr) dataflow.Unit {
	if c.depth >= maxDepth {
		return dataflow.UnitUnknown
	}
	c.depth++
	defer func() { c.depth-- }()

	info := c.pass.TypesInfo
	e = ast.Unparen(e)
	if e == nil {
		return dataflow.UnitUnknown
	}
	// Constants are unitless: 5 can be cycles or bytes as context needs.
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		return dataflow.UnitUnknown
	}
	if u := typeUnit(info.TypeOf(e)); u != dataflow.UnitUnknown {
		return u
	}

	switch e := e.(type) {
	case *ast.Ident:
		if u := c.namedUnit(e, e.Name); u != dataflow.UnitUnknown {
			return u
		}
		return c.assignedUnit(idx, e)
	case *ast.SelectorExpr:
		return c.namedUnit(e.Sel, e.Sel.Name)
	case *ast.CallExpr:
		return c.callUnit(idx, e)
	case *ast.BinaryExpr:
		if !dataflow.Numeric(info.TypeOf(e.X)) || !dataflow.Numeric(info.TypeOf(e.Y)) {
			return dataflow.UnitUnknown
		}
		ux, uy := c.exprUnit(idx, e.X), c.exprUnit(idx, e.Y)
		switch e.Op {
		case token.ADD, token.SUB:
			u, _ := dataflow.AddUnits(ux, uy)
			return u
		case token.MUL:
			return dataflow.MulUnit(ux, uy)
		case token.QUO:
			return dataflow.QuoUnit(ux, uy)
		}
		return dataflow.UnitUnknown
	case *ast.UnaryExpr:
		return c.exprUnit(idx, e.X)
	case *ast.IndexExpr:
		// An element of a unit-named collection carries the unit
		// (SpaceBytes[occ] is bytes) when the element type is numeric.
		if !dataflow.Numeric(info.TypeOf(e)) {
			return dataflow.UnitUnknown
		}
		switch base := ast.Unparen(e.X).(type) {
		case *ast.Ident:
			return dataflow.NameUnit(base.Name)
		case *ast.SelectorExpr:
			return dataflow.NameUnit(base.Sel.Name)
		}
	}
	return dataflow.UnitUnknown
}

// namedUnit applies the naming convention to a resolved identifier when
// its type is numeric.
func (c *checker) namedUnit(id *ast.Ident, name string) dataflow.Unit {
	t := c.pass.TypesInfo.TypeOf(id)
	if !dataflow.Numeric(t) {
		return dataflow.UnitUnknown
	}
	return dataflow.NameUnit(name)
}

// assignedUnit propagates a unit through a local's assignment chain: all
// known assignment units must agree.
func (c *checker) assignedUnit(idx *dataflow.FuncIndex, id *ast.Ident) dataflow.Unit {
	if idx == nil {
		return dataflow.UnitUnknown
	}
	info := c.pass.TypesInfo
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return dataflow.UnitUnknown
	}
	u := dataflow.UnitUnknown
	for _, rhs := range idx.Assignments(obj) {
		ru := c.exprUnit(idx, rhs)
		if ru == dataflow.UnitUnknown {
			continue
		}
		if u == dataflow.UnitUnknown {
			u = ru
			continue
		}
		if u != ru {
			return dataflow.UnitUnknown // conflicting writes: give up
		}
	}
	return u
}

// callUnit resolves the unit of a call's (single) result.
func (c *checker) callUnit(idx *dataflow.FuncIndex, call *ast.CallExpr) dataflow.Unit {
	info := c.pass.TypesInfo
	// Conversions are transparent: int64(doneCycles) is still cycles.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return c.exprUnit(idx, call.Args[0])
	}
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return dataflow.UnitUnknown
	}
	// The sanctioned conversion helpers in internal/sim/time.go.
	if fn.Pkg() != nil && fn.Pkg().Path() == simPkg {
		switch fn.Name() {
		case "Seconds", "SecondsOf":
			return dataflow.UnitSeconds
		case "GBPerSecond", "BytesPerCycleToGBs":
			return dataflow.UnitGBPerSec
		case "CyclesIn":
			return dataflow.UnitCycles
		}
	}
	// Facts: body-derived result units, local first, then cross-package.
	var fact UnitFact
	found := false
	if f, ok := c.local[fn]; ok {
		fact, found = f, true
	} else if c.pass.ImportObjectFact(fn, &fact) {
		found = len(fact.Results) > 0
	}
	if found {
		if s, ok := fact.Results[0]; ok {
			sig, _ := fn.Type().(*types.Signature)
			if sig != nil && sig.Results().Len() == 1 {
				return dataflow.ParseUnit(s)
			}
		}
	}
	// Name convention on the callee (r.Seconds(), t.nodeBytes()).
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Results().Len() == 1 && dataflow.Numeric(sig.Results().At(0).Type()) {
		return dataflow.NameUnit(fn.Name())
	}
	return dataflow.UnitUnknown
}

// typeUnit maps the sim.Cycle named type (and its Cycles alias) to cycles.
func typeUnit(t types.Type) dataflow.Unit {
	named, ok := t.(*types.Named)
	if !ok {
		return dataflow.UnitUnknown
	}
	obj := named.Obj()
	if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == simPkg && obj.Name() == "Cycle" {
		return dataflow.UnitCycles
	}
	return dataflow.UnitUnknown
}

// exprLabel renders an lvalue for diagnostics.
func exprLabel(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return "expression"
}
