// Package seedflow enforces seed provenance: every RNG seed must derive
// from run/point identity — config fields, identity hashes, constants,
// parameters — or byte-determinism dies.
//
// The repository's reproducibility contract (DESIGN.md §4) hangs on seeds
// being functions of *what* is simulated, never of *how the sweep is
// arranged*: internal/calib derives every point's seed from the suite
// seed plus the point's own coordinates precisely so that adding a size
// to an axis cannot shift another curve, and the fault injector keys
// every draw by (seed, component, cycle, index) for the same reason. The
// analyzer finds seeds that violate it:
//
//   - a seed derived from the index of a range over a slice or array — a
//     position, not an identity; it shifts when the sweep's composition
//     changes (derive from the element, or hash the point's coordinates
//     like calib.pointSeed);
//   - a seed derived from a variable written inside a range over a map
//     (the classic loop counter): its value depends on map iteration
//     order;
//   - a seed derived from ambient state (wall clock, process identity,
//     global randomness) — redundant with nodeterminism in library code
//     but reported here too so the message names the seed.
//
// Seed sinks are sim.NewRNG's argument, any call argument whose parameter
// is integer-typed and named "seed"/"...Seed", any composite-literal
// field so named, and — through the dataflow facts layer — any argument
// of a function known (cross-package) to forward that parameter into one
// of the above.
package seedflow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/dataflow"
)

// Analyzer is the seedflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "seedflow",
	Doc:  "require RNG seeds to flow from config, point identity, or constants",
	Run:  run,
}

const simPkg = "beacon/internal/sim"

// SeedFact marks a function that forwards parameters into an RNG seed;
// callers' arguments at those positions are seed sinks too.
type SeedFact struct {
	// Params are the forwarded parameter indices, sorted.
	Params []int `json:"p"`
}

type checker struct {
	pass    *analysis.Pass
	indexes map[*ast.FuncDecl]*dataflow.FuncIndex
	// local mirrors exported SeedFacts for same-package callees.
	local map[*types.Func][]int
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		indexes: map[*ast.FuncDecl]*dataflow.FuncIndex{},
		local:   map[*types.Func][]int{},
	}
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.indexes[fd] = dataflow.IndexFunc(pass.TypesInfo, fd.Type, fd.Body)
				decls = append(decls, fd)
			}
		}
	}
	// Phase 1: compute and export seed-forwarding facts for this
	// package's functions (sinks here are name-based and cross-package
	// fact-based, so A->sink chains resolve; same-package A->B->sink
	// chains resolve through c.local on the checking phase).
	for _, fd := range decls {
		c.exportForwarding(fd)
	}
	// Phase 2: check every sink argument's provenance.
	for _, fd := range decls {
		idx := c.indexes[fd]
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			for _, sink := range c.sinkArgs(n) {
				c.checkSeed(idx, sink)
			}
			return true
		})
	}
	return nil
}

// sink is one expression that becomes an RNG seed.
type sink struct {
	expr ast.Expr
	// what names the sink for diagnostics ("sim.NewRNG seed", "field
	// Seed of fault.Config").
	what string
}

// sinkArgs returns the seed expressions rooted at n.
func (c *checker) sinkArgs(n ast.Node) []sink {
	info := c.pass.TypesInfo
	var out []sink
	switch n := n.(type) {
	case *ast.CallExpr:
		fn := analysis.CalleeFunc(info, n)
		if fn == nil {
			return nil
		}
		if analysis.IsPkgFunc(fn, simPkg, "NewRNG") && len(n.Args) == 1 {
			return []sink{{expr: n.Args[0], what: "sim.NewRNG seed"}}
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return nil
		}
		forwarded := map[int]bool{}
		if idxs, ok := c.local[fn]; ok {
			for _, i := range idxs {
				forwarded[i] = true
			}
		} else {
			var fact SeedFact
			if c.pass.ImportObjectFact(fn, &fact) {
				for _, i := range fact.Params {
					forwarded[i] = true
				}
			}
		}
		for i, arg := range n.Args {
			pi := i
			if sig.Variadic() && pi >= sig.Params().Len()-1 {
				pi = sig.Params().Len() - 1
			}
			if pi < 0 || pi >= sig.Params().Len() {
				continue
			}
			param := sig.Params().At(pi)
			if seedParam(param) || forwarded[pi] {
				out = append(out, sink{expr: arg, what: "seed parameter " + quoteName(param.Name()) + " of " + fn.Name()})
			}
		}
	case *ast.CompositeLit:
		t := info.TypeOf(n)
		if t == nil {
			return nil
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if _, ok := t.Underlying().(*types.Struct); !ok {
			return nil
		}
		for _, el := range n.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || !seedName(key.Name) {
				continue
			}
			if obj := info.Uses[key]; obj != nil && !integer(obj.Type()) {
				continue
			}
			out = append(out, sink{expr: kv.Value, what: "seed field " + key.Name})
		}
	}
	return out
}

// exportForwarding records which of fd's parameters flow into seed sinks.
func (c *checker) exportForwarding(fd *ast.FuncDecl) {
	fn, _ := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return
	}
	idx := c.indexes[fd]
	params := map[int]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		for _, sink := range c.sinkArgs(n) {
			for _, src := range idx.Sources(sink.expr) {
				if src.Kind == dataflow.SrcParam {
					params[src.Param] = true
				}
			}
		}
		return true
	})
	if len(params) == 0 {
		return
	}
	idxs := make([]int, 0, len(params))
	for i := range params {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	c.local[fn] = idxs
	if err := c.pass.ExportObjectFact(fn, SeedFact{Params: idxs}); err != nil {
		c.pass.Reportf(fd.Pos(), "seedflow: exporting fact: %v", err)
	}
}

// checkSeed walks the seed expression back to its roots and reports the
// forbidden ones.
func (c *checker) checkSeed(idx *dataflow.FuncIndex, s sink) {
	seen := map[string]bool{}
	for _, src := range idx.Sources(s.expr) {
		var msg string
		switch src.Kind {
		case dataflow.SrcRangeIndex:
			msg = s.what + " derives from range index " + quoteName(src.Desc) + ": a position, not an identity — it shifts when the collection's composition changes; seed from the element or a point-identity hash instead"
		case dataflow.SrcMapOrdered:
			msg = s.what + " derives from " + quoteName(src.Desc) + ", which is written under map iteration; its value depends on map order — seed from the map key or a config field instead"
		case dataflow.SrcAmbient:
			msg = s.what + " derives from ambient " + src.Desc + "; seeds must flow from config fields, point-identity hashes, or constants"
		default:
			continue
		}
		if seen[msg] {
			continue
		}
		seen[msg] = true
		c.pass.Reportf(s.expr.Pos(), "%s", msg)
	}
}

// seedParam reports whether param is an integer parameter named as a seed.
func seedParam(param *types.Var) bool {
	return seedName(param.Name()) && integer(param.Type())
}

// seedName matches "seed", "Seed", and suffixed forms (FaultSeed).
func seedName(name string) bool {
	return name == "seed" || name == "Seed" || strings.HasSuffix(name, "Seed")
}

// integer reports whether t's underlying type is an integer.
func integer(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// quoteName wraps an identifier for a diagnostic.
func quoteName(s string) string {
	if s == "" {
		return "value"
	}
	return "\"" + s + "\""
}
