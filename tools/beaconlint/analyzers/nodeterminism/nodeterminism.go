// Package nodeterminism forbids wall-clock and ambient-entropy calls in
// simulation code.
//
// The repository's determinism contract (DESIGN.md) requires two runs with
// the same configuration and seed to produce byte-identical output. A
// single time.Now or global-state rand call in a result path silently
// breaks that contract without failing any test until much later. This
// analyzer rejects the whole class at compile time:
//
//   - time.Now, time.Since, time.Until, time.Sleep, timers and tickers;
//   - math/rand and math/rand/v2 package-level functions (the implicitly
//     seeded global generator) and crypto/rand reads;
//   - process-identity entropy: os.Getpid, os.Getppid;
//   - ambient process environment: os.UserCacheDir, os.UserConfigDir,
//     os.UserHomeDir, os.TempDir, os.Hostname, os.Environ — machine-local
//     state that varies across hosts and users. The workload cache's
//     default-directory lookup is the sanctioned, annotated exception
//     (cache entries are content-addressed, so location never reaches
//     results).
//
// Command (package main) code and _test.go files are exempt: CLIs may
// print wall time and tests may time things. Library code that needs wall
// time for provenance only (never reaching simulated results) carries a
// //beaconlint:allow nodeterminism directive with a reason, e.g. the
// runner's per-job wall-clock in progress events.
package nodeterminism

import (
	"go/ast"
	"strings"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the nodeterminism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall-clock and ambient-entropy calls in simulator library code",
	Run:  run,
}

// timeFuncs are the wall-clock entry points in package time.
var timeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// osFuncs are the process-identity entropy sources in package os.
var osFuncs = map[string]bool{"Getpid": true, "Getppid": true}

// osEnvFuncs are the ambient-environment lookups in package os: per-host,
// per-user state that must never steer simulation results.
var osEnvFuncs = map[string]bool{
	"UserCacheDir": true, "UserConfigDir": true, "UserHomeDir": true,
	"TempDir": true, "Hostname": true, "Environ": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil // CLIs may report wall time
	}
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue // tests may time and randomize freely
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if analysis.RecvNamed(fn) != nil {
				return true // methods (time.Time.Sub etc.) never hit the deny list
			}
			switch path := fn.Pkg().Path(); {
			case path == "time" && timeFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "wall-clock call time.%s in simulator code; thread simulated cycles or a seeded source instead (or annotate //beaconlint:allow nodeterminism <reason>)", fn.Name())
			case (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(fn.Name(), "New"):
				pass.Reportf(call.Pos(), "global-state random call %s.%s in simulator code; use a seeded generator (sim.RNG, fault PCG) instead (or annotate //beaconlint:allow nodeterminism <reason>)", path, fn.Name())
			case path == "crypto/rand":
				pass.Reportf(call.Pos(), "crypto entropy call crypto/rand.%s in simulator code; results must be reproducible from the run seed (or annotate //beaconlint:allow nodeterminism <reason>)", fn.Name())
			case path == "os" && osFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "process-identity call os.%s in simulator code; process identity must not influence results (or annotate //beaconlint:allow nodeterminism <reason>)", fn.Name())
			case path == "os" && osEnvFuncs[fn.Name()]:
				pass.Reportf(call.Pos(), "ambient-environment call os.%s in simulator code; machine-local state must not influence results (or annotate //beaconlint:allow nodeterminism <reason>)", fn.Name())
			}
			return true
		})
	}
	return nil
}
