// Package cycleclock enforces the simulator kernel's scheduling contract
// at call sites.
//
// PR 3 made sim.Engine reject events scheduled in the past: ScheduleAt
// records the violation and Run/RunUntil return it instead of executing on
// a corrupted timeline. That protection only works if callers look at the
// returned error. This analyzer closes both gaps statically:
//
//   - a constant negative delay passed to Engine.Schedule is reported at
//     the call (it would panic at runtime — catch it at compile time);
//   - the error result of Engine.Run / Engine.RunUntil must not be
//     discarded, neither by an expression statement nor by assigning the
//     error position to the blank identifier.
package cycleclock

import (
	"go/ast"
	"go/constant"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the cycleclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cycleclock",
	Doc:  "require non-negative sim.Engine delays and checked Run/RunUntil errors",
	Run:  run,
}

const simPkg = "beacon/internal/sim"

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := analysis.CalleeFunc(info, n)
				if analysis.IsMethod(fn, simPkg, "Engine", "Schedule") && len(n.Args) >= 1 {
					if tv, ok := info.Types[n.Args[0]]; ok && tv.Value != nil &&
						tv.Value.Kind() == constant.Int && constant.Sign(tv.Value) < 0 {
						pass.Reportf(n.Args[0].Pos(), "negative delay %s passed to (*sim.Engine).Schedule; delays are relative cycles and must be >= 0", tv.Value)
					}
				}
			case *ast.ExprStmt:
				if fn, call := runCall(pass, n.X); fn != "" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s discarded; a dropped past-cycle violation corrupts the timeline silently", fn)
				}
			case *ast.GoStmt:
				if fn, call := runCall(pass, n.Call); fn != "" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s discarded; a dropped past-cycle violation corrupts the timeline silently", fn)
				}
			case *ast.DeferStmt:
				if fn, call := runCall(pass, n.Call); fn != "" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s discarded; a dropped past-cycle violation corrupts the timeline silently", fn)
				}
			case *ast.AssignStmt:
				// cycles, _ := eng.Run() — the error position is blanked.
				if len(n.Rhs) != 1 || len(n.Lhs) != 2 {
					return true
				}
				fn, call := runCall(pass, n.Rhs[0])
				if fn == "" {
					return true
				}
				if id, ok := n.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s assigned to the blank identifier; check it", fn)
				}
			}
			return true
		})
	}
	return nil
}

// runCall reports whether expr is a call to Engine.Run or Engine.RunUntil,
// returning the method name and the call.
func runCall(pass *analysis.Pass, expr ast.Expr) (string, *ast.CallExpr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	for _, name := range []string{"Run", "RunUntil"} {
		if analysis.IsMethod(fn, simPkg, "Engine", name) {
			return name, call
		}
	}
	return "", nil
}
