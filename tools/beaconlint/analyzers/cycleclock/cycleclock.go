// Package cycleclock enforces the simulator kernel's scheduling contract
// at call sites.
//
// PR 3 made sim.Engine reject events scheduled in the past: ScheduleAt
// records the violation and Run/RunUntil return it instead of executing on
// a corrupted timeline. That protection only works if callers look at the
// returned error. This analyzer closes both gaps statically:
//
//   - a constant negative delay passed to Engine.Schedule is reported at
//     the call (it would panic at runtime — catch it at compile time);
//   - the error result of Engine.Run / Engine.RunUntil must not be
//     discarded, neither by an expression statement nor by assigning the
//     error position to the blank identifier;
//   - a zero-value sim.Engine must not be constructed outside package sim
//     (composite literal, new(), a value-typed variable or struct field):
//     the zero value has no pending-event queue and panics on first use —
//     NewEngine / NewEngineWithScheduler are the only constructors.
package cycleclock

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the cycleclock analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "cycleclock",
	Doc:  "require non-negative sim.Engine delays, checked Run/RunUntil errors, and NewEngine-built engines",
	Run:  run,
}

const simPkg = "beacon/internal/sim"

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	// Package sim itself may name its zero value (the constructors and
	// their tests must); everywhere else construction goes through
	// NewEngine.
	inSim := pass.PkgPath == simPkg || strings.HasPrefix(pass.PkgPath, simPkg+"_test")
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				fn := analysis.CalleeFunc(info, n)
				if analysis.IsMethod(fn, simPkg, "Engine", "Schedule") && len(n.Args) >= 1 {
					if tv, ok := info.Types[n.Args[0]]; ok && tv.Value != nil &&
						tv.Value.Kind() == constant.Int && constant.Sign(tv.Value) < 0 {
						pass.Reportf(n.Args[0].Pos(), "negative delay %s passed to (*sim.Engine).Schedule; delays are relative cycles and must be >= 0", tv.Value)
					}
				}
				if !inSim && len(n.Args) == 1 {
					if b, ok := analysis.Callee(info, n).(*types.Builtin); ok && b.Name() == "new" {
						if tv, ok := info.Types[n.Args[0]]; ok && isEngine(tv.Type) {
							pass.Reportf(n.Pos(), "new(sim.Engine) builds an unusable zero-value engine; call sim.NewEngine")
						}
					}
				}
			case *ast.CompositeLit:
				if !inSim {
					if tv, ok := info.Types[n]; ok && isEngine(tv.Type) {
						pass.Reportf(n.Pos(), "sim.Engine composite literal builds an unusable zero-value engine; call sim.NewEngine")
					}
				}
			case *ast.ValueSpec:
				if !inSim && n.Type != nil && isEngine(info.TypeOf(n.Type)) {
					pass.Reportf(n.Type.Pos(), "variable declared with value type sim.Engine starts as an unusable zero value; declare *sim.Engine and call sim.NewEngine")
				}
			case *ast.StructType:
				if inSim || n.Fields == nil {
					return true
				}
				for _, f := range n.Fields.List {
					if isEngine(info.TypeOf(f.Type)) {
						pass.Reportf(f.Type.Pos(), "struct field with value type sim.Engine embeds an unusable zero value; store *sim.Engine built by sim.NewEngine")
					}
				}
			case *ast.ExprStmt:
				if fn, call := runCall(pass, n.X); fn != "" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s discarded; a dropped past-cycle violation corrupts the timeline silently", fn)
				}
			case *ast.GoStmt:
				if fn, call := runCall(pass, n.Call); fn != "" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s discarded; a dropped past-cycle violation corrupts the timeline silently", fn)
				}
			case *ast.DeferStmt:
				if fn, call := runCall(pass, n.Call); fn != "" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s discarded; a dropped past-cycle violation corrupts the timeline silently", fn)
				}
			case *ast.AssignStmt:
				// cycles, _ := eng.Run() — the error position is blanked.
				if len(n.Rhs) != 1 || len(n.Lhs) != 2 {
					return true
				}
				fn, call := runCall(pass, n.Rhs[0])
				if fn == "" {
					return true
				}
				if id, ok := n.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
					pass.Reportf(call.Pos(), "error result of (*sim.Engine).%s assigned to the blank identifier; check it", fn)
				}
			}
			return true
		})
	}
	return nil
}

// isEngine reports whether t is the value type sim.Engine (not a pointer
// to it).
func isEngine(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == simPkg && obj.Name() == "Engine"
}

// runCall reports whether expr is a call to Engine.Run or Engine.RunUntil,
// returning the method name and the call.
func runCall(pass *analysis.Pass, expr ast.Expr) (string, *ast.CallExpr) {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return "", nil
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	for _, name := range []string{"Run", "RunUntil"} {
		if analysis.IsMethod(fn, simPkg, "Engine", name) {
			return name, call
		}
	}
	return "", nil
}
