// Package floatacc flags floating-point accumulation whose addition order
// is not deterministic.
//
// Float addition is not associative: (a+b)+c differs from a+(b+c) in the
// last ulp, and the repository's reports compare byte-identical. Two
// accumulation shapes have nondeterministic order and are rejected:
//
//   - accumulating into a float declared outside a `range` over a map
//     (iteration order is randomized per run);
//   - accumulating partial sums into a shared float from inside a
//     goroutine (completion order is scheduler-dependent). Partial sums
//     must be collected per job and reduced in index order, the way
//     internal/runner returns results.
package floatacc

import (
	"go/ast"
	"go/token"
	"go/types"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the floatacc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatacc",
	Doc:  "flag order-nondeterministic float accumulation (map iteration, goroutine-joined sums)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, ok := t.Underlying().(*types.Map); !ok {
					return true
				}
				reportFloatAccum(pass, n.Body, n.Pos(), n.End(),
					"float accumulation over map iteration; addition order changes the result bytes — iterate sorted keys")
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					reportFloatAccum(pass, lit.Body, lit.Pos(), lit.End(),
						"float accumulation into shared state from a goroutine; reduce per-job partial sums in index order instead")
				}
			}
			return true
		})
	}
	return nil
}

// reportFloatAccum reports compound float accumulation inside body into
// variables declared outside [lo, hi].
func reportFloatAccum(pass *analysis.Pass, body *ast.BlockStmt, lo, hi token.Pos, msg string) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN:
		default:
			return true
		}
		for _, lhs := range as.Lhs {
			t := info.TypeOf(lhs)
			if t == nil {
				continue
			}
			basic, ok := t.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsFloat == 0 {
				continue
			}
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if analysis.DeclaredWithin(obj, lo, hi) {
					continue // loop/goroutine-local scratch
				}
			}
			pass.Reportf(as.Pos(), "%s", msg)
		}
		return true
	})
}
