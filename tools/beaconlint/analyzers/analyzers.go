// Package analyzers registers the beaconlint analyzer suite.
package analyzers

import (
	"beacon/tools/beaconlint/analysis"
	"beacon/tools/beaconlint/analyzers/cycleclock"
	"beacon/tools/beaconlint/analyzers/errwrap"
	"beacon/tools/beaconlint/analyzers/floatacc"
	"beacon/tools/beaconlint/analyzers/goroutinescope"
	"beacon/tools/beaconlint/analyzers/maporder"
	"beacon/tools/beaconlint/analyzers/metricname"
	"beacon/tools/beaconlint/analyzers/nodeterminism"
	"beacon/tools/beaconlint/analyzers/seedflow"
	"beacon/tools/beaconlint/analyzers/unitflow"
)

// All returns the full suite in deterministic order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cycleclock.Analyzer,
		errwrap.Analyzer,
		floatacc.Analyzer,
		goroutinescope.Analyzer,
		maporder.Analyzer,
		metricname.Analyzer,
		nodeterminism.Analyzer,
		seedflow.Analyzer,
		unitflow.Analyzer,
	}
}

// Names returns the set of registered analyzer names, for directive
// validation.
func Names() map[string]bool {
	names := map[string]bool{}
	for _, a := range All() {
		names[a.Name] = true
	}
	return names
}
