// Package maporder flags `range` over a map whose loop body has an
// order-dependent effect.
//
// Go randomizes map iteration order per run, so any observable effect
// produced inside such a loop — appending to a slice that outlives the
// loop, writing to an io.Writer, emitting obs metrics or trace events,
// scheduling simulator events, or failing a test — varies between runs.
// In this repository that is not a style nit: byte-identical output is the
// simulator's correctness contract.
//
// The canonical fix is to extract the keys, sort them, and range over the
// sorted slice. The analyzer recognizes that exact idiom and does not flag
// a map range whose only effect is collecting keys/values into a slice
// that is sorted immediately after the loop.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration with order-dependent effects (output, metrics, scheduling, test failures)",
	Run:  run,
}

// testingMethods are testing.TB methods whose first invocation order is
// observable (message content, which failure fires first).
var testingMethods = map[string]bool{
	"Error": true, "Errorf": true, "Fatal": true, "Fatalf": true,
	"Log": true, "Logf": true, "Skip": true, "Skipf": true,
	"Fail": true, "FailNow": true,
}

// obsEmitMethods are the beacon/internal/obs methods (keyed Type.Method)
// that record into an ordered stream: counters, histogram samples, trace
// events, snapshots. Read-only accessors (Counter.Value, Histogram.Sum,
// ...) are order-independent and deliberately not listed.
var obsEmitMethods = map[string]bool{
	"Counter.Add": true, "Counter.Inc": true, "Histogram.Observe": true,
	"Registry.Snapshot": true, "Obs.Sample": true, "Obs.MaybeSample": true,
	"Tracer.Span": true, "Tracer.Instant": true, "Tracer.Value": true, "Tracer.Track": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		checkFile(pass, file)
	}
	return nil
}

func checkFile(pass *analysis.Pass, file *ast.File) {
	// Track the enclosing statement-list stack so the sorted-keys idiom
	// can look at the statements that follow a range loop.
	var walk func(n ast.Node, enclosing []ast.Stmt)
	walk = func(n ast.Node, enclosing []ast.Stmt) {
		ast.Inspect(n, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				for _, s := range n.List {
					walk(s, n.List)
				}
				return false
			case *ast.CaseClause:
				for _, s := range n.Body {
					walk(s, n.Body)
				}
				return false
			case *ast.CommClause:
				for _, s := range n.Body {
					walk(s, n.Body)
				}
				return false
			case *ast.RangeStmt:
				checkRange(pass, n, enclosing)
				// keep walking: nested map ranges inside the body are
				// reached through the body's BlockStmt above
			}
			return true
		})
	}
	walk(file, nil)
}

func checkRange(pass *analysis.Pass, rng *ast.RangeStmt, enclosing []ast.Stmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	sinks, appendTargets := findSinks(pass, rng)
	if len(sinks) == 0 {
		return
	}
	// Sorted-key collection idiom: every sink is an append, and every
	// append target is sorted right after the loop.
	if len(appendTargets) == len(sinks) && allSortedAfter(pass, rng, enclosing, appendTargets) {
		return
	}
	pass.Reportf(rng.Pos(), "map iteration with order-dependent effect (%s); iterate over sorted keys instead", strings.Join(dedup(sinks), ", "))
}

// findSinks scans the loop body for order-dependent effects. It returns a
// description per sink and the objects of slices appended to (used to
// recognize the collect-then-sort idiom).
func findSinks(pass *analysis.Pass, rng *ast.RangeStmt) (sinks []string, appendTargets []types.Object) {
	info := pass.TypesInfo
	lo, hi := rng.Pos(), rng.End()
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if b, ok := analysis.Callee(info, call).(*types.Builtin); !ok || b.Name() != "append" {
					continue
				}
				if i >= len(n.Lhs) && len(n.Lhs) != 1 {
					continue
				}
				lhs := n.Lhs[min(i, len(n.Lhs)-1)]
				obj := assignedObject(info, lhs)
				if obj == nil || !analysis.DeclaredWithin(obj, lo, hi) {
					sinks = append(sinks, "append to slice declared outside the loop")
					appendTargets = append(appendTargets, obj)
				}
			}
		case *ast.CallExpr:
			if s := callSink(pass, n, lo, hi); s != "" {
				sinks = append(sinks, s)
			}
		}
		return true
	})
	return sinks, appendTargets
}

// callSink classifies a call inside the loop body as an order-dependent
// effect, returning a description or "".
func callSink(pass *analysis.Pass, call *ast.CallExpr, lo, hi token.Pos) string {
	info := pass.TypesInfo
	fn := analysis.CalleeFunc(info, call)
	if fn == nil {
		return ""
	}
	// Simulator scheduling: event insertion order is tie-break order.
	if analysis.IsMethod(fn, "beacon/internal/sim", "Engine", "Schedule") ||
		analysis.IsMethod(fn, "beacon/internal/sim", "Engine", "ScheduleAt") {
		return "sim.Engine event scheduling"
	}
	// Observability emission: metric/trace record order reaches output.
	if named := analysis.RecvNamed(fn); named != nil {
		if p := named.Obj().Pkg(); p != nil && p.Path() == "beacon/internal/obs" &&
			obsEmitMethods[named.Obj().Name()+"."+fn.Name()] {
			return "obs metric/trace emission"
		}
	}
	// Test failures/logs: which message fires first depends on map order.
	if recv := recvType(fn); recv != nil && testingMethods[fn.Name()] && isTestingTB(recv) {
		return "testing log/failure (first failure depends on map order)"
	}
	// io.Writer writes, either as receiver (w.Write, buf.WriteString) or
	// as an argument (fmt.Fprintf(w, ...)). Writers declared inside the
	// loop body are loop-local scratch and harmless.
	if recv := recvExpr(call); recv != nil {
		if analysis.ImplementsWriter(info.TypeOf(recv)) && !declaredInside(info, recv, lo, hi) {
			return "write to io.Writer"
		}
	}
	for _, arg := range call.Args {
		if analysis.ImplementsWriter(info.TypeOf(arg)) && !declaredInside(info, arg, lo, hi) {
			return "write to io.Writer"
		}
	}
	return ""
}

func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

func recvType(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

func isTestingTB(t types.Type) bool {
	for {
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "testing" {
		return false
	}
	switch obj.Name() {
	case "T", "B", "F", "TB", "common": // log methods live on embedded testing.common
		return true
	}
	return false
}

// declaredInside reports whether expr is an identifier whose object is
// declared within [lo, hi] (e.g. a strings.Builder local to the loop).
func declaredInside(info *types.Info, expr ast.Expr, lo, hi token.Pos) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return analysis.DeclaredWithin(obj, lo, hi)
}

func assignedObject(info *types.Info, lhs ast.Expr) types.Object {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj := info.Defs[lhs]; obj != nil {
			return obj
		}
		return info.Uses[lhs]
	case *ast.SelectorExpr:
		return info.Uses[lhs.Sel]
	}
	return nil
}

// allSortedAfter reports whether every append target is passed to a sort
// call in the statements that follow rng in its enclosing statement list.
func allSortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, enclosing []ast.Stmt, targets []types.Object) bool {
	if len(enclosing) == 0 {
		return false
	}
	idx := -1
	for i, s := range enclosing {
		if s == ast.Stmt(rng) {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	for _, target := range targets {
		if target == nil || !sortedAfter(pass, enclosing[idx+1:], target) {
			return false
		}
	}
	return true
}

func sortedAfter(pass *analysis.Pass, rest []ast.Stmt, target types.Object) bool {
	info := pass.TypesInfo
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := analysis.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			isSort := fn.Pkg().Path() == "sort" ||
				(fn.Pkg().Path() == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
			if !isSort {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == target {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

func dedup(ss []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range ss {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
