// Package goroutinescope confines raw concurrency to the packages that
// own it.
//
// The repository's parallelism contract: every concurrent execution path
// flows through internal/runner's deterministic job pool (bounded slots,
// insertion-order aggregation), internal/obs may use the usual sync
// primitives to make observation thread-safe, and internal/server owns
// the beaconsimd daemon's admission queue and worker set (which execute
// jobs through the runner pool, so the global concurrency bound holds).
// Everywhere else, a `go` statement, a raw channel, or a hand-rolled
// sync.WaitGroup fan-out is a bypass of the pool — it escapes the global -jobs bound and reintroduces
// completion-order nondeterminism the runner exists to remove.
package goroutinescope

import (
	"go/ast"
	"go/types"
	"strings"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the goroutinescope analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "goroutinescope",
	Doc:  "confine go statements, channels, and WaitGroup fan-out to internal/runner, internal/obs, and internal/server",
	Run:  run,
}

// allowedPrefixes are the package-path prefixes that own raw concurrency.
var allowedPrefixes = []string{
	"beacon/internal/runner",
	"beacon/internal/obs",
	"beacon/internal/server",
}

func run(pass *analysis.Pass) error {
	for _, prefix := range allowedPrefixes {
		if strings.HasPrefix(pass.PkgPath, prefix) {
			return nil
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement outside internal/runner; submit jobs to the deterministic pool (runner.Run) instead")
			case *ast.CallExpr:
				if b, ok := analysis.Callee(pass.TypesInfo, n).(*types.Builtin); ok && b.Name() == "make" && len(n.Args) > 0 {
					if t := pass.TypesInfo.TypeOf(n.Args[0]); t != nil {
						if _, ok := t.Underlying().(*types.Chan); ok {
							pass.Reportf(n.Pos(), "channel creation outside internal/runner; route fan-out through the deterministic pool instead")
						}
					}
				}
			case *ast.SelectorExpr:
				if tn, ok := pass.TypesInfo.Uses[n.Sel].(*types.TypeName); ok {
					if p := tn.Pkg(); p != nil && p.Path() == "sync" && tn.Name() == "WaitGroup" {
						pass.Reportf(n.Pos(), "sync.WaitGroup outside internal/runner; hand-rolled fan-out bypasses the deterministic pool")
					}
				}
			}
			return true
		})
	}
	return nil
}
