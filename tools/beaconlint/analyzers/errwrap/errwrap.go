// Package errwrap enforces sentinel-error discipline at comparison and
// wrapping sites.
//
// The repository's public API matches errors programmatically through
// sentinels (beacon.ErrBadConfig, trace.ErrCodec, wcache.ErrCorrupt, ...)
// that travel through %w wrapping layers. That contract has two
// compile-time-checkable failure modes:
//
//   - comparing against a sentinel with == or != (including switch
//     cases): a wrapped sentinel never compares equal — use
//     errors.Is(err, pkg.ErrFoo);
//   - passing a sentinel to fmt.Errorf through %v or %s: the sentinel's
//     text survives but its identity is erased, so downstream errors.Is
//     stops matching — use %w.
//
// A sentinel is any package-level variable whose type implements error.
// Comparisons against nil are exempt (nil checks are not identity
// matches).
package errwrap

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"beacon/tools/beaconlint/analysis"
)

// Analyzer is the errwrap analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errwrap",
	Doc:  "require errors.Is for sentinel comparisons and %w for sentinel wrapping",
	Run:  run,
}

// errorInterface is the error method set, for types.Implements.
var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				checkComparison(pass, n.OpPos, n.X, n.Y)
			case *ast.SwitchStmt:
				if n.Tag == nil || !isErrorType(info.TypeOf(n.Tag)) {
					return true
				}
				for _, clause := range n.Body.List {
					cc, ok := clause.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if s := sentinel(info, e); s != nil {
							pass.Reportf(e.Pos(), "switch case compares error against sentinel %s by identity; a wrapped %s never matches — use if errors.Is(err, %s)", s.Name(), s.Name(), s.Name())
						}
					}
				}
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags err ==/!= sentinel (either side).
func checkComparison(pass *analysis.Pass, opPos token.Pos, x, y ast.Expr) {
	info := pass.TypesInfo
	for _, pair := range [2][2]ast.Expr{{x, y}, {y, x}} {
		s := sentinel(info, pair[0])
		if s == nil {
			continue
		}
		other := pair[1]
		if isNil(info, other) || !isErrorType(info.TypeOf(other)) {
			continue
		}
		pass.Reportf(opPos, "error compared against sentinel %s with ==/!=; a sentinel wrapped with %%w never compares equal — use errors.Is", s.Name())
		return
	}
}

// checkErrorf flags sentinels flowing through fmt.Errorf %v/%s verbs.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	fn := analysis.CalleeFunc(info, call)
	if !analysis.IsPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := info.Types[ast.Unparen(call.Args[0])]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	args := call.Args[1:]
	argIdx := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		j := i + 1
		// Flags, width, precision; '*' consumes an argument.
		for j < len(format) {
			c := format[j]
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' ||
				(c >= '1' && c <= '9') || c == '.' {
				j++
				continue
			}
			if c == '*' {
				argIdx++
				j++
				continue
			}
			break
		}
		if j >= len(format) {
			break
		}
		verb := format[j]
		i = j
		if verb == '%' {
			continue
		}
		if argIdx < len(args) && (verb == 'v' || verb == 's') {
			if s := sentinel(info, args[argIdx]); s != nil {
				pass.Reportf(args[argIdx].Pos(), "sentinel %s passed to fmt.Errorf through %%%c; its identity is erased and errors.Is stops matching — wrap with %%w", s.Name(), verb)
			}
		}
		argIdx++
	}
}

// sentinel resolves e to a package-level error variable, or nil.
func sentinel(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !isErrorType(v.Type()) {
		return nil
	}
	return v
}

// isErrorType reports whether t implements error (including the error
// interface itself).
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && (b.Kind() == types.Invalid || b.Kind() == types.UntypedNil) {
		return false
	}
	return types.Implements(t, errorInterface) || types.Implements(types.NewPointer(t), errorInterface)
}

// isNil reports whether e is the untyped nil.
func isNil(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}
