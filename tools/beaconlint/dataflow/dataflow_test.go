package dataflow

import (
	"bytes"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"beacon/tools/beaconlint/load"
)

// testExports resolves stdlib export data once per test binary, for test
// sources that import (only) the time package.
var (
	exportOnce sync.Once
	exportMap  map[string]string
	exportErr  error
)

// checkSrc type-checks one source string and returns its syntax and facts.
func checkSrc(t *testing.T, src string) (*ast.File, *types.Package, *types.Info) {
	t.Helper()
	exportOnce.Do(func() {
		exportMap, exportErr = load.ExportMap("", "time")
	})
	if exportErr != nil {
		t.Fatalf("resolving export data: %v", exportErr)
	}
	path := filepath.Join(t.TempDir(), "p.go")
	if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	pkg, err := load.LoadFiles(fset, "example.com/p", []string{path}, exportMap)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return pkg.Files[0], pkg.Types, pkg.Info
}

func TestKeyOf(t *testing.T) {
	_, pkg, _ := checkSrc(t, `package p

var Exported = 1

type T struct{}

func (t *T) Method() {}

func Fn() {
	local := 2
	_ = local
}
`)
	scope := pkg.Scope()

	if key, ok := KeyOf(scope.Lookup("Exported")); !ok || key != "example.com/p.Exported" {
		t.Errorf("KeyOf(Exported) = %q, %v", key, ok)
	}
	if key, ok := KeyOf(scope.Lookup("Fn")); !ok || key != "example.com/p.Fn" {
		t.Errorf("KeyOf(Fn) = %q, %v", key, ok)
	}
	method, _, _ := types.LookupFieldOrMethod(scope.Lookup("T").Type(), true, pkg, "Method")
	if key, ok := KeyOf(method); !ok || key != "example.com/p.T.Method" {
		t.Errorf("KeyOf(T.Method) = %q, %v", key, ok)
	}
	// Locals have no cross-package identity.
	fn := scope.Lookup("Fn").(*types.Func)
	local := fn.Scope().Lookup("local")
	if _, ok := KeyOf(local); ok {
		t.Error("KeyOf(local) should not produce a key")
	}
	if _, ok := KeyOf(nil); ok {
		t.Error("KeyOf(nil) should not produce a key")
	}
}

type testFact struct {
	Unit string `json:"u"`
}

func TestStoreRoundTrip(t *testing.T) {
	_, pkg, _ := checkSrc(t, `package p

func A() {}
func B() {}
`)
	a, b := pkg.Scope().Lookup("A"), pkg.Scope().Lookup("B")

	s := NewStore()
	if err := s.ExportFact("unitflow", a, testFact{Unit: "seconds"}); err != nil {
		t.Fatal(err)
	}
	if err := s.ExportFact("unitflow", b, testFact{Unit: "cycles"}); err != nil {
		t.Fatal(err)
	}
	if err := s.ExportFact("seedflow", a, testFact{Unit: "x"}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}

	var got testFact
	if !s.ImportFact("unitflow", a, &got) || got.Unit != "seconds" {
		t.Errorf("ImportFact(unitflow, A) = %+v", got)
	}
	// Analyzer namespaces are disjoint.
	got = testFact{}
	if !s.ImportFact("seedflow", a, &got) || got.Unit != "x" {
		t.Errorf("ImportFact(seedflow, A) = %+v", got)
	}
	if s.ImportFact("errwrap", a, &got) {
		t.Error("ImportFact for an analyzer with no facts should miss")
	}

	// Encode -> Merge into a fresh store preserves everything.
	data, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Merge(data); err != nil {
		t.Fatal(err)
	}
	got = testFact{}
	if !s2.ImportFact("unitflow", b, &got) || got.Unit != "cycles" {
		t.Errorf("after Merge, ImportFact(unitflow, B) = %+v", got)
	}
	if s2.Len() != 3 {
		t.Fatalf("after Merge, Len = %d, want 3", s2.Len())
	}
}

func TestStoreEncodeDeterministic(t *testing.T) {
	_, pkg, _ := checkSrc(t, `package p

func A() {}
func B() {}
func C() {}
`)
	objs := []types.Object{
		pkg.Scope().Lookup("A"), pkg.Scope().Lookup("B"), pkg.Scope().Lookup("C"),
	}
	// Insert in different orders; encodings must be byte-identical (vet's
	// content hash treats the .vetx file as opaque bytes).
	build := func(order []int) []byte {
		s := NewStore()
		for _, i := range order {
			if err := s.ExportFact("unitflow", objs[i], testFact{Unit: "seconds"}); err != nil {
				t.Fatal(err)
			}
			if err := s.ExportFact("seedflow", objs[i], testFact{Unit: "id"}); err != nil {
				t.Fatal(err)
			}
		}
		data, err := s.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := build([]int{0, 1, 2})
	for _, order := range [][]int{{2, 1, 0}, {1, 0, 2}, {2, 0, 1}} {
		if other := build(order); !bytes.Equal(first, other) {
			t.Fatalf("Encode not deterministic:\n%s\nvs\n%s", first, other)
		}
	}
}

func TestStoreMergeEmpty(t *testing.T) {
	s := NewStore()
	// The empty facts file old beaconlint versions wrote.
	if err := s.Merge(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Merge([]byte{}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if err := s.Merge([]byte("{not json")); err == nil {
		t.Error("Merge of malformed input should error")
	}
}

func TestUnitNamingAndLattice(t *testing.T) {
	names := []struct {
		name string
		want Unit
	}{
		{"SetupSeconds", UnitSeconds},
		{"FAWStallCycles", UnitCycles},
		{"lastCycle", UnitCycles},
		{"MigratedBytes", UnitBytes},
		{"migrationBytesPerCycle", UnitBytesPerCycle},
		{"bytesPerCycle", UnitBytesPerCycle}, // whole name beats its "Cycle" tail
		{"PeakGBPerSec", UnitGBPerSec},
		{"seconds", UnitSeconds},
		{"payload", UnitUnknown},
		{"Count", UnitUnknown},
	}
	for _, tt := range names {
		if got := NameUnit(tt.name); got != tt.want {
			t.Errorf("NameUnit(%q) = %v, want %v", tt.name, got, tt.want)
		}
	}

	if u, ok := AddUnits(UnitCycles, UnitCycles); !ok || u != UnitCycles {
		t.Errorf("AddUnits(cycles, cycles) = %v, %v", u, ok)
	}
	if u, ok := AddUnits(UnitUnknown, UnitSeconds); !ok || u != UnitSeconds {
		t.Errorf("AddUnits(unknown, seconds) = %v, %v", u, ok)
	}
	if _, ok := AddUnits(UnitCycles, UnitSeconds); ok {
		t.Error("AddUnits(cycles, seconds) should be incompatible")
	}
	if u := MulUnit(UnitBytesPerCycle, UnitCycles); u != UnitBytes {
		t.Errorf("MulUnit(bpc, cycles) = %v, want bytes", u)
	}
	if u := MulUnit(UnitSeconds, UnitCycles); u != UnitUnknown {
		t.Errorf("MulUnit(seconds, cycles) = %v, want unknown", u)
	}
	if u := QuoUnit(UnitBytes, UnitCycles); u != UnitBytesPerCycle {
		t.Errorf("QuoUnit(bytes, cycles) = %v, want bpc", u)
	}
	if u := QuoUnit(UnitBytes, UnitBytesPerCycle); u != UnitCycles {
		t.Errorf("QuoUnit(bytes, bpc) = %v, want cycles", u)
	}

	// ParseUnit inverts String for every unit in the lattice.
	for _, u := range []Unit{UnitCycles, UnitSeconds, UnitBytes, UnitBytesPerCycle, UnitGBPerSec} {
		if got := ParseUnit(u.String()); got != u {
			t.Errorf("ParseUnit(%q) = %v, want %v", u.String(), got, u)
		}
	}
	if got := ParseUnit("furlongs"); got != UnitUnknown {
		t.Errorf("ParseUnit(furlongs) = %v, want unknown", got)
	}
}

// sourcesOf indexes fn and returns the source kinds of the expression
// assigned to the variable named "probe".
func sourcesOf(t *testing.T, src string) []SourceKind {
	t.Helper()
	f, _, info := checkSrc(t, src)
	var fd *ast.FuncDecl
	for _, decl := range f.Decls {
		if d, ok := decl.(*ast.FuncDecl); ok && d.Name.Name == "fn" {
			fd = d
		}
	}
	if fd == nil {
		t.Fatal("no func fn in source")
	}
	idx := IndexFunc(info, fd.Type, fd.Body)
	var probe ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "probe" {
				probe = as.Rhs[0]
			}
		}
		return true
	})
	if probe == nil {
		t.Fatal("no probe assignment in fn")
	}
	var kinds []SourceKind
	for _, s := range idx.Sources(probe) {
		kinds = append(kinds, s.Kind)
	}
	return kinds
}

func hasKind(kinds []SourceKind, k SourceKind) bool {
	for _, got := range kinds {
		if got == k {
			return true
		}
	}
	return false
}

func TestSourcesRoots(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want SourceKind
	}{
		{"constant", `package p
func fn() { probe := 42; _ = probe }`, SrcConst},
		{"param", `package p
func fn(seed uint64) { probe := seed + 1; _ = probe }`, SrcParam},
		{"field", `package p
type cfg struct{ Seed uint64 }
func fn(c cfg) { probe := c.Seed; _ = probe }`, SrcStable},
		{"package var", `package p
var base uint64
func fn() { probe := base; _ = probe }`, SrcStable},
		{"range element", `package p
func fn(xs []uint64) {
	for _, x := range xs {
		probe := x
		_ = probe
	}
}`, SrcStable},
		{"range index", `package p
func fn(xs []uint64) {
	for i := range xs {
		probe := uint64(i)
		_ = probe
	}
}`, SrcRangeIndex},
		{"map counter", `package p
func fn(m map[string]int) {
	n := 0
	for range m {
		n++
	}
	probe := n
	_ = probe
}`, SrcMapOrdered},
		{"ambient clock", `package p
import "time"
func fn() { probe := time.Now().UnixNano(); _ = probe }`, SrcAmbient},
		{"assignment chain", `package p
func fn(xs []int) {
	for i := range xs {
		j := i
		k := j * 3
		probe := k
		_ = probe
	}
}`, SrcRangeIndex},
		{"int range is a deterministic counter", `package p
func fn() {
	for i := range 8 {
		probe := i
		_ = probe
	}
}`, SrcStable},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			kinds := sourcesOf(t, tt.src)
			if !hasKind(kinds, tt.want) {
				t.Errorf("Sources = %v, want to include %v", kinds, tt.want)
			}
			// Negative control: a benign root never reads as a range index
			// unless the test expects one.
			if tt.want != SrcRangeIndex && hasKind(kinds, SrcRangeIndex) {
				t.Errorf("Sources = %v, unexpected range-index root", kinds)
			}
		})
	}
}
