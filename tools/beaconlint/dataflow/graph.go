package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SourceKind classifies the roots a backward dataflow walk can reach.
type SourceKind int

// The root kinds, from benign to forbidden-for-seeds.
const (
	// SrcConst is a compile-time constant.
	SrcConst SourceKind = iota
	// SrcStable is a stable identity: a struct field read (config), a
	// package-level var/const, or a range element value.
	SrcStable
	// SrcParam is a parameter of the enclosing function; Param holds its
	// index. Callers are responsible for what they pass.
	SrcParam
	// SrcCall is the result of a function or method call (hash/derivation
	// functions); the call's arguments are walked separately.
	SrcCall
	// SrcRangeIndex is the index variable of a range over a slice or
	// array: a position, not an identity — it shifts when the collection's
	// composition changes.
	SrcRangeIndex
	// SrcMapOrdered is a variable written inside the body of a range over
	// a map while declared outside it (the classic loop counter): its
	// value depends on map iteration order.
	SrcMapOrdered
	// SrcAmbient is a call into ambient environment state (wall clock,
	// process identity, global randomness).
	SrcAmbient
	// SrcUnknown is anything the walk cannot classify.
	SrcUnknown
)

// Source is one root reached by the backward walk.
type Source struct {
	// Kind classifies the root.
	Kind SourceKind
	// Pos anchors it in the syntax.
	Pos token.Pos
	// Obj is the object involved, when there is one.
	Obj types.Object
	// Param is the parameter index for SrcParam.
	Param int
	// Desc is a short human description for diagnostics.
	Desc string
}

// assignment is one recorded write to an object.
type assignment struct {
	// rhs is the assigned expression; nil for ++/--/op= self-updates.
	rhs ast.Expr
	// underMapRange marks writes lexically inside a map-range body.
	underMapRange bool
}

// rangeRole records that an object is a range-clause variable.
type rangeRole struct {
	// index is true for the first variable of a slice/array/string range
	// (a position); false for element values and map keys/values.
	index bool
	// overMap is true when the ranged operand is a map.
	overMap bool
	// pos is the range statement's position.
	pos token.Pos
}

// FuncIndex is the assignment graph of one function body: every write to
// every local, parameter indices, and range-clause roles. Analyzers build
// one per function and run backward walks (Sources) against it.
type FuncIndex struct {
	info    *types.Info
	params  map[types.Object]int
	assigns map[types.Object][]assignment
	ranges  map[types.Object]rangeRole
}

// IndexFunc builds the assignment graph for one function declaration or
// literal. decl is the *ast.FuncDecl or *ast.FuncLit; typ is its
// *ast.FuncType; body may be nil (externally defined functions index
// empty).
func IndexFunc(info *types.Info, typ *ast.FuncType, body *ast.BlockStmt) *FuncIndex {
	idx := &FuncIndex{
		info:    info,
		params:  map[types.Object]int{},
		assigns: map[types.Object][]assignment{},
		ranges:  map[types.Object]rangeRole{},
	}
	if typ != nil && typ.Params != nil {
		i := 0
		for _, field := range typ.Params.List {
			if len(field.Names) == 0 {
				i++
				continue
			}
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					idx.params[obj] = i
				}
				i++
			}
		}
	}
	if body == nil {
		return idx
	}
	idx.walk(body, 0)
	return idx
}

// walk records assignments and range roles; mapDepth counts enclosing
// map-range bodies.
func (idx *FuncIndex) walk(n ast.Node, mapDepth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.AssignStmt:
		for i, lhs := range n.Lhs {
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0] // multi-value: attribute the whole call
			}
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				rhs = nil // op=: a self-update, like ++
			}
			idx.record(lhs, rhs, mapDepth > 0)
		}
		for _, rhs := range n.Rhs {
			idx.walk(rhs, mapDepth)
		}
		return
	case *ast.IncDecStmt:
		idx.record(n.X, nil, mapDepth > 0)
		return
	case *ast.RangeStmt:
		t := idx.info.TypeOf(n.X)
		overMap := false
		indexLike := false
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				overMap = true
			case *types.Slice, *types.Array, *types.Pointer, *types.Basic:
				// Slices, arrays (incl. *array), strings: the first
				// variable is a position. Integer ranges (go1.22) also
				// land here but a 0..n-1 counter has no key variable —
				// treat its single variable as a value, not a position.
				if _, isBasic := t.Underlying().(*types.Basic); !isBasic {
					indexLike = true
				}
			}
		}
		for vi, v := range []ast.Expr{n.Key, n.Value} {
			id, ok := v.(*ast.Ident)
			if !ok || id == nil {
				continue
			}
			obj := idx.info.Defs[id]
			if obj == nil {
				obj = idx.info.Uses[id]
			}
			if obj == nil {
				continue
			}
			idx.ranges[obj] = rangeRole{
				index:   vi == 0 && indexLike,
				overMap: overMap,
				pos:     n.Pos(),
			}
		}
		d := mapDepth
		if overMap {
			d++
		}
		idx.walk(n.Body, d)
		if n.X != nil {
			idx.walk(n.X, mapDepth)
		}
		return
	case *ast.FuncLit:
		// A nested literal is its own dataflow scope; its writes to
		// captured variables still count (walked with the same index),
		// and map-depth resets are deliberately NOT applied: a closure
		// invoked from a map-range body inherits the order taint only if
		// the call site is inside one, which this lexical pass cannot
		// see. Walk it at the current depth.
		idx.walk(n.Body, mapDepth)
		return
	}
	// Generic traversal for everything else.
	var children []ast.Node
	ast.Inspect(n, func(c ast.Node) bool {
		if c == n {
			return true
		}
		if c != nil {
			children = append(children, c)
		}
		return false
	})
	for _, c := range children {
		idx.walk(c, mapDepth)
	}
}

// record notes a write of rhs to the lvalue expression lhs.
func (idx *FuncIndex) record(lhs ast.Expr, rhs ast.Expr, underMapRange bool) {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := idx.info.Defs[id]
	if obj == nil {
		obj = idx.info.Uses[id]
	}
	if obj == nil {
		return
	}
	idx.assigns[obj] = append(idx.assigns[obj], assignment{rhs: rhs, underMapRange: underMapRange})
}

// ParamIndex returns the parameter index of obj, or -1.
func (idx *FuncIndex) ParamIndex(obj types.Object) int {
	if i, ok := idx.params[obj]; ok {
		return i
	}
	return -1
}

// Assignments returns the recorded RHS expressions written to obj
// (excluding self-updates, whose rhs is nil).
func (idx *FuncIndex) Assignments(obj types.Object) []ast.Expr {
	var out []ast.Expr
	for _, a := range idx.assigns[obj] {
		if a.rhs != nil {
			out = append(out, a.rhs)
		}
	}
	return out
}

// AmbientCall reports whether fn is an ambient-environment source a seed
// must never derive from. The deny list mirrors nodeterminism's core set;
// seedflow re-checks it so seed diagnostics name the seed, not just the
// call.
func AmbientCall(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	switch pkg {
	case "time":
		return name == "Now" || name == "Since" || name == "Until"
	case "os":
		return name == "Getpid" || name == "Getppid" || name == "Environ" || name == "Getenv" || name == "Hostname"
	case "math/rand", "math/rand/v2", "crypto/rand":
		return true
	}
	return false
}

// Sources runs the backward walk from e: through local assignment chains,
// range-clause roles, and call arguments, down to the roots. The walk is
// bounded by a visited set over objects, so self-referential updates
// (x = x + 1) terminate.
func (idx *FuncIndex) Sources(e ast.Expr) []Source {
	w := &sourceWalk{idx: idx, visited: map[types.Object]bool{}}
	w.expr(e)
	return w.out
}

type sourceWalk struct {
	idx     *FuncIndex
	visited map[types.Object]bool
	out     []Source
}

func (w *sourceWalk) add(s Source) { w.out = append(w.out, s) }

func (w *sourceWalk) expr(e ast.Expr) {
	if e == nil {
		return
	}
	e = ast.Unparen(e)
	info := w.idx.info

	// Any constant-valued expression is a constant root, whatever its
	// syntax (literal, named constant, constant arithmetic).
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		w.add(Source{Kind: SrcConst, Pos: e.Pos()})
		return
	}

	switch e := e.(type) {
	case *ast.Ident:
		w.ident(e)
	case *ast.SelectorExpr:
		// A field read or a package-qualified name: both stable.
		if _, ok := info.Selections[e]; ok {
			w.add(Source{Kind: SrcStable, Pos: e.Pos(), Obj: info.Uses[e.Sel], Desc: "field " + e.Sel.Name})
			return
		}
		w.add(Source{Kind: SrcStable, Pos: e.Pos(), Obj: info.Uses[e.Sel], Desc: e.Sel.Name})
	case *ast.CallExpr:
		// A type conversion is transparent.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			for _, arg := range e.Args {
				w.expr(arg)
			}
			return
		}
		fn, _ := calleeObject(info, e).(*types.Func)
		if AmbientCall(fn) {
			w.add(Source{Kind: SrcAmbient, Pos: e.Pos(), Obj: fn, Desc: ambientDesc(fn)})
			return
		}
		w.add(Source{Kind: SrcCall, Pos: e.Pos(), Obj: fn})
		// A method's receiver feeds its result as much as the arguments
		// do: time.Now().UnixNano() roots at time.Now.
		if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := info.Selections[sel]; isMethod {
				w.expr(sel.X)
			}
		}
		for _, arg := range e.Args {
			w.expr(arg)
		}
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		// The element of a collection is a value; the index contributes
		// nothing to the element's identity.
		w.expr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				w.expr(kv.Value)
				continue
			}
			w.expr(el)
		}
	default:
		w.add(Source{Kind: SrcUnknown, Pos: e.Pos()})
	}
}

func (w *sourceWalk) ident(id *ast.Ident) {
	info := w.idx.info
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		w.add(Source{Kind: SrcUnknown, Pos: id.Pos()})
		return
	}
	if w.visited[obj] {
		return
	}
	w.visited[obj] = true

	if _, ok := obj.(*types.Const); ok {
		w.add(Source{Kind: SrcConst, Pos: id.Pos(), Obj: obj})
		return
	}
	if i := w.idx.ParamIndex(obj); i >= 0 {
		w.add(Source{Kind: SrcParam, Pos: id.Pos(), Obj: obj, Param: i})
		return
	}
	// Package-level state is stable identity.
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		w.add(Source{Kind: SrcStable, Pos: id.Pos(), Obj: obj, Desc: obj.Name()})
		return
	}

	contributed := false
	if role, ok := w.idx.ranges[obj]; ok {
		contributed = true
		if role.index {
			w.add(Source{Kind: SrcRangeIndex, Pos: id.Pos(), Obj: obj, Desc: obj.Name()})
		} else {
			w.add(Source{Kind: SrcStable, Pos: id.Pos(), Obj: obj, Desc: "range element " + obj.Name()})
		}
	}
	for _, a := range w.idx.assigns[obj] {
		if a.underMapRange {
			contributed = true
			w.add(Source{Kind: SrcMapOrdered, Pos: id.Pos(), Obj: obj, Desc: obj.Name()})
			continue
		}
		if a.rhs != nil {
			contributed = true
			w.expr(a.rhs)
		}
	}
	if !contributed {
		w.add(Source{Kind: SrcUnknown, Pos: id.Pos(), Obj: obj})
	}
}

func ambientDesc(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return "ambient call"
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// calleeObject is analysis.Callee without the import cycle: dataflow must
// not depend on the analysis package (analyzers import both).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel]
	}
	return nil
}
