// Package dataflow is beaconlint's shared type-aware dataflow layer: a
// small facts engine over go/types plus the assignment/call-graph walks the
// unit-safety and seed-provenance analyzers are built on.
//
// Facts attach analyzer-computed knowledge to package-level objects —
// "this function's result is in seconds", "this function forwards its
// second parameter into an RNG seed" — and survive package boundaries:
// the standalone driver analyzes packages in dependency order and carries
// one Store across the whole run, and the unitchecker driver serializes
// the Store into the .vetx file go vet threads between compilation units.
// Objects are keyed structurally (import path + name), so a fact exported
// while a package is checked from source is found again when the same
// object is later imported from gc export data.
package dataflow

import (
	"encoding/json"
	"fmt"
	"go/types"
	"sort"
)

// KeyOf returns the cross-package key for obj: "pkgpath.Name" for
// package-level objects, "pkgpath.Recv.Name" for methods. The second
// result is false for objects that have no stable cross-package identity
// (locals, interface methods, universe names).
func KeyOf(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "", false
			}
			return fn.Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name(), true
		}
	}
	// Only package-scope objects are addressable across packages.
	if obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Pkg().Path() + "." + obj.Name(), true
}

// Store holds facts for every analyzer in a run, keyed by analyzer name
// and object key. The zero value is not usable; call NewStore.
type Store struct {
	facts map[string]map[string]json.RawMessage
}

// NewStore returns an empty fact store.
func NewStore() *Store {
	return &Store{facts: map[string]map[string]json.RawMessage{}}
}

// ExportFact records fact (any JSON-encodable value) for obj under the
// analyzer's namespace. Objects without a cross-package key are silently
// skipped — their facts could never be looked up again.
func (s *Store) ExportFact(analyzer string, obj types.Object, fact any) error {
	key, ok := KeyOf(obj)
	if !ok {
		return nil
	}
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("dataflow: encoding %s fact for %s: %w", analyzer, key, err)
	}
	m := s.facts[analyzer]
	if m == nil {
		m = map[string]json.RawMessage{}
		s.facts[analyzer] = m
	}
	m[key] = data
	return nil
}

// ImportFact decodes the analyzer's fact for obj into fact (a pointer) and
// reports whether one was found.
func (s *Store) ImportFact(analyzer string, obj types.Object, fact any) bool {
	key, ok := KeyOf(obj)
	if !ok {
		return false
	}
	data, ok := s.facts[analyzer][key]
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// Len reports the total number of stored facts, across analyzers.
func (s *Store) Len() int {
	n := 0
	for _, m := range s.facts {
		n += len(m)
	}
	return n
}

// storeEntry is the serialized form of one fact: a flat, sorted triple
// list so Encode output is deterministic (it feeds go vet's content
// hashing — byte-identical facts mean cache hits).
type storeEntry struct {
	Analyzer string          `json:"a"`
	Object   string          `json:"o"`
	Fact     json.RawMessage `json:"f"`
}

// Encode serializes the store deterministically.
func (s *Store) Encode() ([]byte, error) {
	analyzers := make([]string, 0, len(s.facts))
	for a := range s.facts {
		analyzers = append(analyzers, a)
	}
	sort.Strings(analyzers)
	var entries []storeEntry
	for _, a := range analyzers {
		m := s.facts[a]
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			entries = append(entries, storeEntry{Analyzer: a, Object: k, Fact: m[k]})
		}
	}
	return json.Marshal(entries)
}

// Merge decodes entries produced by Encode into the store, overwriting
// duplicates. Empty input (the empty facts file old beaconlint versions
// wrote, or a dependency with no facts) is accepted and adds nothing.
func (s *Store) Merge(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var entries []storeEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("dataflow: decoding fact store: %w", err)
	}
	for _, e := range entries {
		m := s.facts[e.Analyzer]
		if m == nil {
			m = map[string]json.RawMessage{}
			s.facts[e.Analyzer] = m
		}
		m[e.Object] = e.Fact
	}
	return nil
}
