package dataflow

import (
	"go/types"
	"strings"
)

// Unit is the physical-dimension lattice the unitflow analyzer tags
// expressions with. The simulator's whole physics runs over five
// dimensions; everything else is Unknown and never flagged.
type Unit int

// The units, in severity-free declaration order.
const (
	UnitUnknown Unit = iota
	UnitCycles
	UnitSeconds
	UnitBytes
	UnitBytesPerCycle
	UnitGBPerSec
)

// String names the unit the way diagnostics spell it.
func (u Unit) String() string {
	switch u {
	case UnitCycles:
		return "cycles"
	case UnitSeconds:
		return "seconds"
	case UnitBytes:
		return "bytes"
	case UnitBytesPerCycle:
		return "bytes-per-cycle"
	case UnitGBPerSec:
		return "GB/s"
	}
	return "unknown"
}

// ParseUnit is the inverse of Unit.String, for decoding serialized facts.
func ParseUnit(s string) Unit {
	for _, u := range []Unit{UnitCycles, UnitSeconds, UnitBytes, UnitBytesPerCycle, UnitGBPerSec} {
		if u.String() == s {
			return u
		}
	}
	return UnitUnknown
}

// nameSuffixes maps identifier suffixes to units, longest (most specific)
// first: "BytesPerCycle" must win over its own "Cycle" tail, "GBPerSec"
// over "Sec".
var nameSuffixes = []struct {
	suffix string
	unit   Unit
}{
	{"GBPerSecond", UnitGBPerSec},
	{"GBPerSec", UnitGBPerSec},
	{"GBps", UnitGBPerSec},
	{"GBs", UnitGBPerSec},
	{"BytesPerCycle", UnitBytesPerCycle},
	{"Seconds", UnitSeconds},
	{"Cycles", UnitCycles},
	{"Cycle", UnitCycles},
	{"Bytes", UnitBytes},
}

// wholeNames maps lowercase whole identifiers to units, for locals named
// after their dimension (`seconds := ...`).
var wholeNames = map[string]Unit{
	"seconds":       UnitSeconds,
	"secs":          UnitSeconds,
	"cycles":        UnitCycles,
	"cycle":         UnitCycles,
	"bytes":         UnitBytes,
	"bytesPerCycle": UnitBytesPerCycle,
	"gbs":           UnitGBPerSec,
}

// NameUnit infers a unit from an identifier following the repository's
// naming conventions (SetupSeconds, FAWStallCycles, MigratedBytes,
// migrationBytesPerCycle, GBPerSec). Whole names win over suffixes:
// a parameter named "bytesPerCycle" is bytes-per-cycle, not the "Cycle"
// its tail would suggest.
func NameUnit(name string) Unit {
	if u, ok := wholeNames[name]; ok {
		return u
	}
	for _, s := range nameSuffixes {
		if strings.HasSuffix(name, s.suffix) {
			return s.unit
		}
	}
	return UnitUnknown
}

// Numeric reports whether t's underlying type is a basic numeric type —
// the only types unit tags apply to (a slice named WaitCycles is a
// collection, not a quantity).
func Numeric(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// AddUnits combines operand units under +, -, and comparisons: same known
// unit stays, one unknown side adopts the known side, and two different
// known units are incompatible (reported by the second result).
func AddUnits(x, y Unit) (Unit, bool) {
	switch {
	case x == y:
		return x, true
	case x == UnitUnknown:
		return y, true
	case y == UnitUnknown:
		return x, true
	}
	return UnitUnknown, false
}

// MulUnit combines operand units under *: the only product the lattice
// can name is bytes/cycle x cycles = bytes. Everything else — including a
// known unit times a dimensionless count — leaves the lattice.
func MulUnit(x, y Unit) Unit {
	if (x == UnitBytesPerCycle && y == UnitCycles) || (x == UnitCycles && y == UnitBytesPerCycle) {
		return UnitBytes
	}
	return UnitUnknown
}

// QuoUnit combines operand units under /: bytes/cycles = bytes-per-cycle,
// bytes / bytes-per-cycle = cycles. Other ratios leave the lattice.
func QuoUnit(x, y Unit) Unit {
	switch {
	case x == UnitBytes && y == UnitCycles:
		return UnitBytesPerCycle
	case x == UnitBytes && y == UnitBytesPerCycle:
		return UnitCycles
	}
	return UnitUnknown
}
