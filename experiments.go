package beacon

import (
	"fmt"
	"strings"

	"beacon/internal/energy"
	"beacon/internal/report"
	"beacon/internal/stats"
)

// RunConfig scales the evaluation harness. Larger values sharpen the
// throughput-bound behaviour at the cost of wall-clock time.
type RunConfig struct {
	// GenomeScale is bases per relative Gbp of the real assemblies.
	GenomeScale int
	// Reads is the read count per dataset.
	Reads int
	// Seed drives sampling.
	Seed uint64
}

// DefaultRunConfig is the scale used for EXPERIMENTS.md.
func DefaultRunConfig() RunConfig {
	return RunConfig{GenomeScale: 30_000, Reads: 500, Seed: 0xBEAC07}
}

// QuickRunConfig is a reduced scale for tests.
func QuickRunConfig() RunConfig {
	return RunConfig{GenomeScale: 8_000, Reads: 120, Seed: 0xBEAC07}
}

func (rc RunConfig) workloadConfig(sp Species) WorkloadConfig {
	cfg := DefaultWorkloadConfig(sp)
	cfg.GenomeScale = rc.GenomeScale
	cfg.Reads = rc.Reads
	cfg.Seed = rc.Seed
	return cfg
}

// ladderStep is one position on a figure's optimization ladder.
type ladderStep struct {
	Name string
	Opts Options
	// Flow overrides the k-mer flow for this step (k-mer ladders only).
	Flow KmerFlow
}

// seedingLadder returns the paper's step sequence for a design.
// BEACON-D's FM ladder ends with multi-chip coalescing; BEACON-S never
// coalesces (its DIMMs are unmodified).
func ladderFor(app Application, kind PlatformKind) []ladderStep {
	packing := Options{DataPacking: true}
	memacc := Options{DataPacking: true, MemAccessOpt: true}
	placed := Options{DataPacking: true, MemAccessOpt: true, Placement: true}
	steps := []ladderStep{
		{Name: "CXL-vanilla", Opts: Vanilla()},
		{Name: "+data packing", Opts: packing},
		{Name: "+mem access opt", Opts: memacc},
		{Name: "+placement/mapping", Opts: placed},
	}
	if kind == BeaconD && app == FMSeeding {
		steps = append(steps, ladderStep{Name: "+multi-chip coalescing", Opts: AllOptimizations()})
	}
	if kind == BeaconS && app == KmerCounting {
		steps = append(steps, ladderStep{Name: "+single-pass KMC", Opts: placed, Flow: SinglePass})
	}
	return steps
}

// finalOptions returns the fully optimized configuration for a design/app.
func finalOptions(app Application, kind PlatformKind) Options {
	steps := ladderFor(app, kind)
	return steps[len(steps)-1].Opts
}

// LadderEntry is one (step, dataset) cell of a figure.
type LadderEntry struct {
	Step    string
	Species Species
	// PerfVsCPU and EnergyVsCPU normalize to the CPU baseline, as every bar
	// chart in the paper does.
	PerfVsCPU   float64
	EnergyVsCPU float64
	// CommEnergyRatio is the communication share (Fig. 17).
	CommEnergyRatio float64
}

// LadderFigure reproduces one panel pair of Figs. 12/14/15.
type LadderFigure struct {
	App     Application
	Kind    PlatformKind
	Species []Species
	Steps   []string
	Entries []LadderEntry
	// GeoPerfVsCPU / GeoEnergyVsCPU index by step (geomean across species).
	GeoPerfVsCPU   []float64
	GeoEnergyVsCPU []float64
	// StepGains is the per-step multiplicative performance gain.
	StepGains []float64
	// VsBaselinePerf and VsBaselineEnergy compare the final step to the
	// DDR NDP baseline (MEDAL/NEST).
	VsBaselinePerf, VsBaselineEnergy float64
	// VanillaVsBaselinePerf compares CXL-vanilla to the DDR baseline.
	VanillaVsBaselinePerf float64
	// PctOfIdealPerf and PctOfIdealEnergy compare the final step to the
	// idealized-communication design.
	PctOfIdealPerf, PctOfIdealEnergy float64
}

// buildWorkload constructs the workload for a species with a flow override.
// Hash seeding issues ~6x fewer memory steps per read than FM seeding, so
// its read count is scaled up to keep the timing runs in the same
// throughput-bound regime as the other applications.
func (rc RunConfig) buildWorkload(app Application, sp Species, flow KmerFlow) (*Workload, error) {
	cfg := rc.workloadConfig(sp)
	cfg.Flow = flow
	if app == HashSeeding {
		cfg.Reads *= 2
	}
	return NewWorkload(app, cfg)
}

// speciesFor returns the datasets an application is evaluated on.
func speciesFor(app Application) []Species {
	if app == KmerCounting {
		return []Species{Human}
	}
	return AllSeedingSpecies()
}

// baselineFlow returns the flow the DDR baseline (NEST) uses.
func baselineFlow(app Application) KmerFlow { return MultiPass }

// runLadder executes a full ladder figure.
func runLadder(app Application, kind PlatformKind, rc RunConfig) (*LadderFigure, error) {
	speciesList := speciesFor(app)
	steps := ladderFor(app, kind)
	fig := &LadderFigure{App: app, Kind: kind, Species: speciesList}
	for _, s := range steps {
		fig.Steps = append(fig.Steps, s.Name)
	}

	type perSpecies struct {
		cpu    *Report
		ddr    *Report
		ladder []*Report
		ideal  *Report
	}
	all := make([]perSpecies, len(speciesList))

	defaultFlow := MultiPass // D and the baselines count multi-pass
	for si, sp := range speciesList {
		wlDefault, err := rc.buildWorkload(app, sp, defaultFlow)
		if err != nil {
			return nil, err
		}
		// The CPU software is single-pass-equivalent (BFCounter reads input
		// once); normalize against the single-pass trace for k-mer counting.
		cpuWL := wlDefault
		if app == KmerCounting {
			if cpuWL, err = rc.buildWorkload(app, sp, SinglePass); err != nil {
				return nil, err
			}
		}
		cpu, err := Simulate(Platform{Kind: CPU}, cpuWL)
		if err != nil {
			return nil, err
		}
		ddr, err := Simulate(Platform{Kind: DDRBaseline}, wlDefault)
		if err != nil {
			return nil, err
		}
		ps := perSpecies{cpu: cpu, ddr: ddr}
		for _, st := range steps {
			wl := wlDefault
			if app == KmerCounting && st.Flow == SinglePass {
				if wl, err = rc.buildWorkload(app, sp, SinglePass); err != nil {
					return nil, err
				}
			}
			rep, err := Simulate(Platform{Kind: kind, Opts: st.Opts}, wl)
			if err != nil {
				return nil, err
			}
			ps.ladder = append(ps.ladder, rep)
		}
		// Ideal uses the final step's workload and options plus IdealComm.
		idealOpts := steps[len(steps)-1].Opts
		idealOpts.IdealComm = true
		idealWL := wlDefault
		if app == KmerCounting && steps[len(steps)-1].Flow == SinglePass {
			if idealWL, err = rc.buildWorkload(app, sp, SinglePass); err != nil {
				return nil, err
			}
		}
		ideal, err := Simulate(Platform{Kind: kind, Opts: idealOpts}, idealWL)
		if err != nil {
			return nil, err
		}
		ps.ideal = ideal
		all[si] = ps
	}

	// Populate entries and aggregates.
	for stepIdx, stepName := range fig.Steps {
		var perfs, energies []float64
		for si, sp := range speciesList {
			rep := all[si].ladder[stepIdx]
			perf := all[si].cpu.Seconds / rep.Seconds
			en := all[si].cpu.EnergyPJ / rep.EnergyPJ
			fig.Entries = append(fig.Entries, LadderEntry{
				Step: stepName, Species: sp,
				PerfVsCPU: perf, EnergyVsCPU: en,
				CommEnergyRatio: rep.CommEnergyRatio(),
			})
			perfs = append(perfs, perf)
			energies = append(energies, en)
		}
		fig.GeoPerfVsCPU = append(fig.GeoPerfVsCPU, stats.MustGeoMean(perfs))
		fig.GeoEnergyVsCPU = append(fig.GeoEnergyVsCPU, stats.MustGeoMean(energies))
	}
	for i := 1; i < len(fig.GeoPerfVsCPU); i++ {
		fig.StepGains = append(fig.StepGains, fig.GeoPerfVsCPU[i]/fig.GeoPerfVsCPU[i-1])
	}

	var vsBasePerf, vsBaseEnergy, vanVsBase, pctIdeal, pctIdealEnergy []float64
	last := len(fig.Steps) - 1
	for si := range speciesList {
		fin := all[si].ladder[last]
		vsBasePerf = append(vsBasePerf, all[si].ddr.Seconds/fin.Seconds)
		vsBaseEnergy = append(vsBaseEnergy, all[si].ddr.EnergyPJ/fin.EnergyPJ)
		vanVsBase = append(vanVsBase, all[si].ddr.Seconds/all[si].ladder[0].Seconds)
		pctIdeal = append(pctIdeal, all[si].ideal.Seconds/fin.Seconds)
		pctIdealEnergy = append(pctIdealEnergy, all[si].ideal.EnergyPJ/fin.EnergyPJ)
	}
	fig.VsBaselinePerf = stats.MustGeoMean(vsBasePerf)
	fig.VsBaselineEnergy = stats.MustGeoMean(vsBaseEnergy)
	fig.VanillaVsBaselinePerf = stats.MustGeoMean(vanVsBase)
	fig.PctOfIdealPerf = stats.MustGeoMean(pctIdeal)
	fig.PctOfIdealEnergy = stats.MustGeoMean(pctIdealEnergy)
	return fig, nil
}

// String renders the figure as text tables.
func (f *LadderFigure) String() string {
	var b strings.Builder
	title := fmt.Sprintf("%s on %s — performance vs 48-thread CPU", f.App, f.Kind)
	headers := []string{"step"}
	for _, sp := range f.Species {
		headers = append(headers, string(sp))
	}
	headers = append(headers, "GM")
	perf := report.NewTable(title, headers...)
	en := report.NewTable(strings.Replace(title, "performance", "energy reduction", 1), headers...)
	for si, step := range f.Steps {
		prow := []string{step}
		erow := []string{step}
		for _, e := range f.Entries[si*len(f.Species) : (si+1)*len(f.Species)] {
			prow = append(prow, report.FormatRatio(e.PerfVsCPU))
			erow = append(erow, report.FormatRatio(e.EnergyVsCPU))
		}
		prow = append(prow, report.FormatRatio(f.GeoPerfVsCPU[si]))
		erow = append(erow, report.FormatRatio(f.GeoEnergyVsCPU[si]))
		perf.AddRow(prow...)
		en.AddRow(erow...)
	}
	b.WriteString(perf.String())
	b.WriteByte('\n')
	b.WriteString(en.String())
	fmt.Fprintf(&b, "\nfinal vs DDR NDP baseline: %s perf, %s energy (vanilla vs baseline: %s)\n",
		report.FormatRatio(f.VsBaselinePerf), report.FormatRatio(f.VsBaselineEnergy),
		report.FormatRatio(f.VanillaVsBaselinePerf))
	fmt.Fprintf(&b, "final vs idealized communication: %s perf, %s energy efficiency\n",
		report.FormatPercent(f.PctOfIdealPerf), report.FormatPercent(f.PctOfIdealEnergy))
	return b.String()
}

// Figure12 reproduces the FM-index seeding evaluation for both designs.
func Figure12(rc RunConfig) (d, s *LadderFigure, err error) {
	if d, err = runLadder(FMSeeding, BeaconD, rc); err != nil {
		return nil, nil, err
	}
	if s, err = runLadder(FMSeeding, BeaconS, rc); err != nil {
		return nil, nil, err
	}
	return d, s, nil
}

// Figure14 reproduces the hash-index seeding evaluation.
func Figure14(rc RunConfig) (d, s *LadderFigure, err error) {
	if d, err = runLadder(HashSeeding, BeaconD, rc); err != nil {
		return nil, nil, err
	}
	if s, err = runLadder(HashSeeding, BeaconS, rc); err != nil {
		return nil, nil, err
	}
	return d, s, nil
}

// Figure15 reproduces the k-mer counting evaluation.
func Figure15(rc RunConfig) (d, s *LadderFigure, err error) {
	if d, err = runLadder(KmerCounting, BeaconD, rc); err != nil {
		return nil, nil, err
	}
	if s, err = runLadder(KmerCounting, BeaconS, rc); err != nil {
		return nil, nil, err
	}
	return d, s, nil
}

// Fig3Row is one workload of Fig. 3.
type Fig3Row struct {
	Workload string
	// PerfGain and EnergyGain are idealized-communication improvements for
	// the DDR NDP baseline.
	PerfGain, EnergyGain float64
}

// Figure3Result reproduces Fig. 3.
type Figure3Result struct {
	Rows []Fig3Row
	// AvgPerf / AvgEnergy are geometric means (paper: 4.36x / 2.32x).
	AvgPerf, AvgEnergy float64
}

// Figure3 measures how much idealized communication would speed up the
// previous DDR-DIMM accelerators — the paper's motivation experiment.
func Figure3(rc RunConfig) (*Figure3Result, error) {
	out := &Figure3Result{}
	var perfs, energies []float64
	run := func(app Application, sp Species) error {
		wl, err := rc.buildWorkload(app, sp, baselineFlow(app))
		if err != nil {
			return err
		}
		real, err := Simulate(Platform{Kind: DDRBaseline}, wl)
		if err != nil {
			return err
		}
		ideal, err := Simulate(Platform{Kind: DDRBaseline, Opts: Options{IdealComm: true}}, wl)
		if err != nil {
			return err
		}
		row := Fig3Row{
			Workload:   fmt.Sprintf("%s/%s", app, sp),
			PerfGain:   real.Seconds / ideal.Seconds,
			EnergyGain: real.EnergyPJ / ideal.EnergyPJ,
		}
		out.Rows = append(out.Rows, row)
		perfs = append(perfs, row.PerfGain)
		energies = append(energies, row.EnergyGain)
		return nil
	}
	for _, sp := range AllSeedingSpecies() {
		if err := run(FMSeeding, sp); err != nil {
			return nil, err
		}
		if err := run(HashSeeding, sp); err != nil {
			return nil, err
		}
	}
	if err := run(KmerCounting, Human); err != nil {
		return nil, err
	}
	// The paper reports plain averages for Fig. 3.
	out.AvgPerf = stats.Mean(perfs)
	out.AvgEnergy = stats.Mean(energies)
	return out, nil
}

// String renders Fig. 3.
func (f *Figure3Result) String() string {
	t := report.NewTable("Fig. 3 — DDR NDP baselines with idealized communication",
		"workload", "perf gain", "energy gain")
	for _, r := range f.Rows {
		t.AddRow(r.Workload, report.FormatRatio(r.PerfGain), report.FormatRatio(r.EnergyGain))
	}
	t.AddRow("average", report.FormatRatio(f.AvgPerf), report.FormatRatio(f.AvgEnergy))
	return t.String()
}

// Figure13Result reproduces the chip-balance study.
type Figure13Result struct {
	// WithoutCoalescing and WithCoalescing are per-chip access counts
	// normalized to their mean.
	WithoutCoalescing, WithCoalescing []float64
	// CVWithout and CVWith are the coefficients of variation.
	CVWithout, CVWith float64
}

// Figure13 measures per-chip access balance on the CXLG-DIMMs for FM-index
// seeding, without and with multi-chip coalescing (Fig. 11/13).
func Figure13(rc RunConfig) (*Figure13Result, error) {
	wl, err := rc.buildWorkload(FMSeeding, PinusTaeda, MultiPass)
	if err != nil {
		return nil, err
	}
	placed := Options{DataPacking: true, MemAccessOpt: true, Placement: true}
	without, err := Simulate(Platform{Kind: BeaconD, Opts: placed}, wl)
	if err != nil {
		return nil, err
	}
	with, err := Simulate(Platform{Kind: BeaconD, Opts: AllOptimizations()}, wl)
	if err != nil {
		return nil, err
	}
	norm := func(xs []uint64) ([]float64, float64) {
		fs := make([]float64, len(xs))
		for i, x := range xs {
			fs[i] = float64(x)
		}
		mean := stats.Mean(fs)
		if mean == 0 {
			return fs, 0
		}
		out := make([]float64, len(fs))
		for i := range fs {
			out[i] = fs[i] / mean
		}
		return out, stats.CoefVar(fs)
	}
	res := &Figure13Result{}
	res.WithoutCoalescing, res.CVWithout = norm(without.ChipAccesses)
	res.WithCoalescing, res.CVWith = norm(with.ChipAccesses)
	return res, nil
}

// String renders Fig. 13.
func (f *Figure13Result) String() string {
	t := report.NewTable("Fig. 13 — normalized memory access per DRAM chip (FM seeding)",
		"chip", "w/o coalescing", "w/ coalescing")
	for i := range f.WithoutCoalescing {
		t.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.3f", f.WithoutCoalescing[i]),
			fmt.Sprintf("%.3f", f.WithCoalescing[i]))
	}
	t.AddRow("CV", fmt.Sprintf("%.3f", f.CVWithout), fmt.Sprintf("%.3f", f.CVWith))
	return t.String()
}

// Figure16Result reproduces the pre-alignment evaluation.
type Figure16Result struct {
	Species []Species
	// PerfD/PerfS and EnergyD/EnergyS are per-species CPU-normalized values.
	PerfD, PerfS, EnergyD, EnergyS []float64
	// Geomeans.
	GeoPerfD, GeoPerfS, GeoEnergyD, GeoEnergyS float64
}

// Figure16 runs DNA pre-alignment on both designs with full optimizations.
func Figure16(rc RunConfig) (*Figure16Result, error) {
	out := &Figure16Result{Species: AllSeedingSpecies()}
	for _, sp := range out.Species {
		wl, err := rc.buildWorkload(PreAlignment, sp, MultiPass)
		if err != nil {
			return nil, err
		}
		cpu, err := Simulate(Platform{Kind: CPU}, wl)
		if err != nil {
			return nil, err
		}
		d, err := Simulate(Platform{Kind: BeaconD, Opts: finalOptions(PreAlignment, BeaconD)}, wl)
		if err != nil {
			return nil, err
		}
		s, err := Simulate(Platform{Kind: BeaconS, Opts: finalOptions(PreAlignment, BeaconS)}, wl)
		if err != nil {
			return nil, err
		}
		out.PerfD = append(out.PerfD, cpu.Seconds/d.Seconds)
		out.PerfS = append(out.PerfS, cpu.Seconds/s.Seconds)
		out.EnergyD = append(out.EnergyD, cpu.EnergyPJ/d.EnergyPJ)
		out.EnergyS = append(out.EnergyS, cpu.EnergyPJ/s.EnergyPJ)
	}
	out.GeoPerfD = stats.MustGeoMean(out.PerfD)
	out.GeoPerfS = stats.MustGeoMean(out.PerfS)
	out.GeoEnergyD = stats.MustGeoMean(out.EnergyD)
	out.GeoEnergyS = stats.MustGeoMean(out.EnergyS)
	return out, nil
}

// String renders Fig. 16.
func (f *Figure16Result) String() string {
	t := report.NewTable("Fig. 16 — DNA pre-alignment vs 48-thread CPU",
		"dataset", "BEACON-D perf", "BEACON-S perf", "BEACON-D energy", "BEACON-S energy")
	for i, sp := range f.Species {
		t.AddRow(string(sp),
			report.FormatRatio(f.PerfD[i]), report.FormatRatio(f.PerfS[i]),
			report.FormatRatio(f.EnergyD[i]), report.FormatRatio(f.EnergyS[i]))
	}
	t.AddRow("GM",
		report.FormatRatio(f.GeoPerfD), report.FormatRatio(f.GeoPerfS),
		report.FormatRatio(f.GeoEnergyD), report.FormatRatio(f.GeoEnergyS))
	return t.String()
}

// Figure17Result reproduces the energy-breakdown study.
type Figure17Result struct {
	Kind PlatformKind
	// Steps and CommRatio/DRAMRatio/ComputeRatio index the ladder,
	// averaged across the four applications.
	Steps        []string
	CommRatio    []float64
	DRAMRatio    []float64
	ComputeRatio []float64
}

// Figure17 measures the energy breakdown along the ladder, averaged over
// the four applications (one representative dataset each).
func Figure17(kind PlatformKind, rc RunConfig) (*Figure17Result, error) {
	apps := []Application{FMSeeding, HashSeeding, KmerCounting, PreAlignment}
	// Use the longest ladder's step names; shorter ladders clamp to final.
	maxSteps := []string{"CXL-vanilla", "+data packing", "+mem access opt", "+placement/mapping", "+app-specific"}
	out := &Figure17Result{Kind: kind, Steps: maxSteps}
	sums := make([]energy.Breakdown, len(maxSteps))
	for _, app := range apps {
		sp := speciesFor(app)[0]
		steps := ladderFor(app, kind)
		for i := range maxSteps {
			st := steps[min(i, len(steps)-1)]
			flow := MultiPass
			if app == KmerCounting && st.Flow == SinglePass {
				flow = SinglePass
			}
			wl, err := rc.buildWorkload(app, sp, flow)
			if err != nil {
				return nil, err
			}
			rep, err := Simulate(Platform{Kind: kind, Opts: st.Opts}, wl)
			if err != nil {
				return nil, err
			}
			sums[i].Add(energy.Breakdown{
				CommunicationPJ: rep.CommEnergyPJ / rep.EnergyPJ,
				DRAMPJ:          rep.DRAMEnergyPJ / rep.EnergyPJ,
				ComputePJ:       rep.ComputeEnergyPJ / rep.EnergyPJ,
			})
		}
	}
	for i := range maxSteps {
		n := float64(len(apps))
		out.CommRatio = append(out.CommRatio, sums[i].CommunicationPJ/n)
		out.DRAMRatio = append(out.DRAMRatio, sums[i].DRAMPJ/n)
		out.ComputeRatio = append(out.ComputeRatio, sums[i].ComputePJ/n)
	}
	return out, nil
}

// String renders Fig. 17.
func (f *Figure17Result) String() string {
	t := report.NewTable(fmt.Sprintf("Fig. 17 — energy breakdown on %s (avg over 4 apps)", f.Kind),
		"step", "communication", "DRAM", "computation")
	for i, s := range f.Steps {
		t.AddRow(s, report.FormatPercent(f.CommRatio[i]),
			report.FormatPercent(f.DRAMRatio[i]), report.FormatPercent(f.ComputeRatio[i]))
	}
	return t.String()
}

// TableIIRow re-exports the paper's PE synthesis results.
type TableIIRow = energy.PEOverhead

// TableII returns the paper's Table II (PE area/power constants used by the
// energy model).
func TableII() []TableIIRow { return energy.TableII() }

// OptSummary reproduces §VI-G: total optimization gains per design.
type OptSummary struct {
	Kind PlatformKind
	// PerfGain and EnergyGain are final-vs-vanilla geomeans across apps.
	PerfGain, EnergyGain float64
	// CommBefore and CommAfter are communication energy shares at vanilla
	// and at the final step.
	CommBefore, CommAfter float64
}

// OptimizationSummary aggregates the ladder gains across all four
// applications for one design.
func OptimizationSummary(kind PlatformKind, rc RunConfig) (*OptSummary, error) {
	apps := []Application{FMSeeding, HashSeeding, KmerCounting, PreAlignment}
	var perfs, energies, before, after []float64
	for _, app := range apps {
		sp := speciesFor(app)[0]
		steps := ladderFor(app, kind)
		first, last := steps[0], steps[len(steps)-1]
		runStep := func(st ladderStep) (*Report, error) {
			flow := MultiPass
			if app == KmerCounting && st.Flow == SinglePass {
				flow = SinglePass
			}
			wl, err := rc.buildWorkload(app, sp, flow)
			if err != nil {
				return nil, err
			}
			return Simulate(Platform{Kind: kind, Opts: st.Opts}, wl)
		}
		v, err := runStep(first)
		if err != nil {
			return nil, err
		}
		f, err := runStep(last)
		if err != nil {
			return nil, err
		}
		perfs = append(perfs, v.Seconds/f.Seconds)
		energies = append(energies, v.EnergyPJ/f.EnergyPJ)
		before = append(before, v.CommEnergyRatio())
		after = append(after, f.CommEnergyRatio())
	}
	return &OptSummary{
		Kind:       kind,
		PerfGain:   stats.MustGeoMean(perfs),
		EnergyGain: stats.MustGeoMean(energies),
		CommBefore: stats.Mean(before),
		CommAfter:  stats.Mean(after),
	}, nil
}

// String renders the summary.
func (s *OptSummary) String() string {
	return fmt.Sprintf("%s optimizations: %s perf, %s energy; communication energy %s -> %s",
		s.Kind, report.FormatRatio(s.PerfGain), report.FormatRatio(s.EnergyGain),
		report.FormatPercent(s.CommBefore), report.FormatPercent(s.CommAfter))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
