package beacon

import (
	"context"
	"fmt"
	"strings"

	"beacon/internal/energy"
	"beacon/internal/report"
)

// RunConfig scales the evaluation harness. Larger values sharpen the
// throughput-bound behaviour at the cost of wall-clock time.
type RunConfig struct {
	// GenomeScale is bases per relative Gbp of the real assemblies.
	GenomeScale int
	// Reads is the read count per dataset.
	Reads int
	// Seed drives sampling.
	Seed uint64
}

// DefaultRunConfig is the scale used for EXPERIMENTS.md.
func DefaultRunConfig() RunConfig {
	return RunConfig{GenomeScale: 30_000, Reads: 500, Seed: 0xBEAC07}
}

// QuickRunConfig is a reduced scale for tests.
func QuickRunConfig() RunConfig {
	return RunConfig{GenomeScale: 8_000, Reads: 120, Seed: 0xBEAC07}
}

func (rc RunConfig) workloadConfig(sp Species) WorkloadConfig {
	cfg := DefaultWorkloadConfig(sp)
	cfg.GenomeScale = rc.GenomeScale
	cfg.Reads = rc.Reads
	cfg.Seed = rc.Seed
	return cfg
}

// ladderStep is one position on a figure's optimization ladder.
type ladderStep struct {
	Name string
	Opts Options
	// Flow overrides the k-mer flow for this step (k-mer ladders only).
	Flow KmerFlow
}

// seedingLadder returns the paper's step sequence for a design.
// BEACON-D's FM ladder ends with multi-chip coalescing; BEACON-S never
// coalesces (its DIMMs are unmodified).
func ladderFor(app Application, kind PlatformKind) []ladderStep {
	packing := Options{DataPacking: true}
	memacc := Options{DataPacking: true, MemAccessOpt: true}
	placed := Options{DataPacking: true, MemAccessOpt: true, Placement: true}
	steps := []ladderStep{
		{Name: "CXL-vanilla", Opts: Vanilla()},
		{Name: "+data packing", Opts: packing},
		{Name: "+mem access opt", Opts: memacc},
		{Name: "+placement/mapping", Opts: placed},
	}
	if kind == BeaconD && app == FMSeeding {
		steps = append(steps, ladderStep{Name: "+multi-chip coalescing", Opts: AllOptimizations()})
	}
	if kind == BeaconS && app == KmerCounting {
		steps = append(steps, ladderStep{Name: "+single-pass KMC", Opts: placed, Flow: SinglePass})
	}
	return steps
}

// finalOptions returns the fully optimized configuration for a design/app.
func finalOptions(app Application, kind PlatformKind) Options {
	steps := ladderFor(app, kind)
	return steps[len(steps)-1].Opts
}

// LadderEntry is one (step, dataset) cell of a figure.
type LadderEntry struct {
	Step    string
	Species Species
	// PerfVsCPU and EnergyVsCPU normalize to the CPU baseline, as every bar
	// chart in the paper does.
	PerfVsCPU   float64
	EnergyVsCPU float64
	// CommEnergyRatio is the communication share (Fig. 17).
	CommEnergyRatio float64
}

// LadderFigure reproduces one panel pair of Figs. 12/14/15.
type LadderFigure struct {
	App     Application
	Kind    PlatformKind
	Species []Species
	Steps   []string
	Entries []LadderEntry
	// GeoPerfVsCPU / GeoEnergyVsCPU index by step (geomean across species).
	GeoPerfVsCPU   []float64
	GeoEnergyVsCPU []float64
	// StepGains is the per-step multiplicative performance gain.
	StepGains []float64
	// VsBaselinePerf and VsBaselineEnergy compare the final step to the
	// DDR NDP baseline (MEDAL/NEST).
	VsBaselinePerf, VsBaselineEnergy float64
	// VanillaVsBaselinePerf compares CXL-vanilla to the DDR baseline.
	VanillaVsBaselinePerf float64
	// PctOfIdealPerf and PctOfIdealEnergy compare the final step to the
	// idealized-communication design.
	PctOfIdealPerf, PctOfIdealEnergy float64
}

// buildWorkload constructs the workload for a species with a flow override.
// Hash seeding issues ~6x fewer memory steps per read than FM seeding, so
// its read count is scaled up to keep the timing runs in the same
// throughput-bound regime as the other applications.
func (rc RunConfig) buildWorkload(app Application, sp Species, flow KmerFlow) (*Workload, error) {
	cfg := rc.workloadConfig(sp)
	cfg.Flow = flow
	if app == HashSeeding {
		cfg.Reads *= 2
	}
	return NewWorkload(app, cfg)
}

// speciesFor returns the datasets an application is evaluated on.
func speciesFor(app Application) []Species {
	if app == KmerCounting {
		return []Species{Human}
	}
	return AllSeedingSpecies()
}

// baselineFlow returns the flow the DDR baseline (NEST) uses.
func baselineFlow(app Application) KmerFlow { return MultiPass }

// runLadder executes a full ladder figure on a fresh single-evaluation
// orchestrator (kept for the benchmark harness; figure functions share an
// Evaluator instead).
func runLadder(app Application, kind PlatformKind, rc RunConfig) (*LadderFigure, error) {
	return NewEvaluator(rc, 0).runLadder(context.Background(), app, kind)
}

// String renders the figure as text tables.
func (f *LadderFigure) String() string {
	var b strings.Builder
	title := fmt.Sprintf("%s on %s — performance vs 48-thread CPU", f.App, f.Kind)
	headers := []string{"step"}
	for _, sp := range f.Species {
		headers = append(headers, string(sp))
	}
	headers = append(headers, "GM")
	perf := report.NewTable(title, headers...)
	en := report.NewTable(strings.Replace(title, "performance", "energy reduction", 1), headers...)
	for si, step := range f.Steps {
		prow := []string{step}
		erow := []string{step}
		for _, e := range f.Entries[si*len(f.Species) : (si+1)*len(f.Species)] {
			prow = append(prow, report.FormatRatio(e.PerfVsCPU))
			erow = append(erow, report.FormatRatio(e.EnergyVsCPU))
		}
		prow = append(prow, report.FormatRatio(f.GeoPerfVsCPU[si]))
		erow = append(erow, report.FormatRatio(f.GeoEnergyVsCPU[si]))
		perf.AddRow(prow...)
		en.AddRow(erow...)
	}
	b.WriteString(perf.String())
	b.WriteByte('\n')
	b.WriteString(en.String())
	fmt.Fprintf(&b, "\nfinal vs DDR NDP baseline: %s perf, %s energy (vanilla vs baseline: %s)\n",
		report.FormatRatio(f.VsBaselinePerf), report.FormatRatio(f.VsBaselineEnergy),
		report.FormatRatio(f.VanillaVsBaselinePerf))
	fmt.Fprintf(&b, "final vs idealized communication: %s perf, %s energy efficiency\n",
		report.FormatPercent(f.PctOfIdealPerf), report.FormatPercent(f.PctOfIdealEnergy))
	return b.String()
}

// Figure12 reproduces the FM-index seeding evaluation for both designs.
// It (and every figure function below) runs its simulations on a
// GOMAXPROCS-wide worker pool; use an Evaluator directly to control the
// pool width, share workload caches across figures, or attach a timeout.
func Figure12(rc RunConfig) (d, s *LadderFigure, err error) {
	return NewEvaluator(rc, 0).Figure12(context.Background())
}

// Figure14 reproduces the hash-index seeding evaluation.
func Figure14(rc RunConfig) (d, s *LadderFigure, err error) {
	return NewEvaluator(rc, 0).Figure14(context.Background())
}

// Figure15 reproduces the k-mer counting evaluation.
func Figure15(rc RunConfig) (d, s *LadderFigure, err error) {
	return NewEvaluator(rc, 0).Figure15(context.Background())
}

// Fig3Row is one workload of Fig. 3.
type Fig3Row struct {
	Workload string
	// PerfGain and EnergyGain are idealized-communication improvements for
	// the DDR NDP baseline.
	PerfGain, EnergyGain float64
}

// Figure3Result reproduces Fig. 3.
type Figure3Result struct {
	Rows []Fig3Row
	// AvgPerf / AvgEnergy are geometric means (paper: 4.36x / 2.32x).
	AvgPerf, AvgEnergy float64
}

// Figure3 measures how much idealized communication would speed up the
// previous DDR-DIMM accelerators — the paper's motivation experiment.
func Figure3(rc RunConfig) (*Figure3Result, error) {
	return NewEvaluator(rc, 0).Figure3(context.Background())
}

// String renders Fig. 3.
func (f *Figure3Result) String() string {
	t := report.NewTable("Fig. 3 — DDR NDP baselines with idealized communication",
		"workload", "perf gain", "energy gain")
	for _, r := range f.Rows {
		t.AddRow(r.Workload, report.FormatRatio(r.PerfGain), report.FormatRatio(r.EnergyGain))
	}
	t.AddRow("average", report.FormatRatio(f.AvgPerf), report.FormatRatio(f.AvgEnergy))
	return t.String()
}

// Figure13Result reproduces the chip-balance study.
type Figure13Result struct {
	// WithoutCoalescing and WithCoalescing are per-chip access counts
	// normalized to their mean.
	WithoutCoalescing, WithCoalescing []float64
	// CVWithout and CVWith are the coefficients of variation.
	CVWithout, CVWith float64
}

// Figure13 measures per-chip access balance on the CXLG-DIMMs for FM-index
// seeding, without and with multi-chip coalescing (Fig. 11/13).
func Figure13(rc RunConfig) (*Figure13Result, error) {
	return NewEvaluator(rc, 0).Figure13(context.Background())
}

// String renders Fig. 13.
func (f *Figure13Result) String() string {
	t := report.NewTable("Fig. 13 — normalized memory access per DRAM chip (FM seeding)",
		"chip", "w/o coalescing", "w/ coalescing")
	for i := range f.WithoutCoalescing {
		t.AddRow(fmt.Sprintf("%d", i),
			fmt.Sprintf("%.3f", f.WithoutCoalescing[i]),
			fmt.Sprintf("%.3f", f.WithCoalescing[i]))
	}
	t.AddRow("CV", fmt.Sprintf("%.3f", f.CVWithout), fmt.Sprintf("%.3f", f.CVWith))
	return t.String()
}

// Figure16Result reproduces the pre-alignment evaluation.
type Figure16Result struct {
	Species []Species
	// PerfD/PerfS and EnergyD/EnergyS are per-species CPU-normalized values.
	PerfD, PerfS, EnergyD, EnergyS []float64
	// Geomeans.
	GeoPerfD, GeoPerfS, GeoEnergyD, GeoEnergyS float64
}

// Figure16 runs DNA pre-alignment on both designs with full optimizations.
func Figure16(rc RunConfig) (*Figure16Result, error) {
	return NewEvaluator(rc, 0).Figure16(context.Background())
}

// String renders Fig. 16.
func (f *Figure16Result) String() string {
	t := report.NewTable("Fig. 16 — DNA pre-alignment vs 48-thread CPU",
		"dataset", "BEACON-D perf", "BEACON-S perf", "BEACON-D energy", "BEACON-S energy")
	for i, sp := range f.Species {
		t.AddRow(string(sp),
			report.FormatRatio(f.PerfD[i]), report.FormatRatio(f.PerfS[i]),
			report.FormatRatio(f.EnergyD[i]), report.FormatRatio(f.EnergyS[i]))
	}
	t.AddRow("GM",
		report.FormatRatio(f.GeoPerfD), report.FormatRatio(f.GeoPerfS),
		report.FormatRatio(f.GeoEnergyD), report.FormatRatio(f.GeoEnergyS))
	return t.String()
}

// Figure17Result reproduces the energy-breakdown study.
type Figure17Result struct {
	Kind PlatformKind
	// Steps and CommRatio/DRAMRatio/ComputeRatio index the ladder,
	// averaged across the four applications.
	Steps        []string
	CommRatio    []float64
	DRAMRatio    []float64
	ComputeRatio []float64
}

// Figure17 measures the energy breakdown along the ladder, averaged over
// the four applications (one representative dataset each).
func Figure17(kind PlatformKind, rc RunConfig) (*Figure17Result, error) {
	return NewEvaluator(rc, 0).Figure17(context.Background(), kind)
}

// String renders Fig. 17.
func (f *Figure17Result) String() string {
	t := report.NewTable(fmt.Sprintf("Fig. 17 — energy breakdown on %s (avg over 4 apps)", f.Kind),
		"step", "communication", "DRAM", "computation")
	for i, s := range f.Steps {
		t.AddRow(s, report.FormatPercent(f.CommRatio[i]),
			report.FormatPercent(f.DRAMRatio[i]), report.FormatPercent(f.ComputeRatio[i]))
	}
	return t.String()
}

// TableIIRow re-exports the paper's PE synthesis results.
type TableIIRow = energy.PEOverhead

// TableII returns the paper's Table II (PE area/power constants used by the
// energy model).
func TableII() []TableIIRow { return energy.TableII() }

// OptSummary reproduces §VI-G: total optimization gains per design.
type OptSummary struct {
	Kind PlatformKind
	// PerfGain and EnergyGain are final-vs-vanilla geomeans across apps.
	PerfGain, EnergyGain float64
	// CommBefore and CommAfter are communication energy shares at vanilla
	// and at the final step.
	CommBefore, CommAfter float64
}

// OptimizationSummary aggregates the ladder gains across all four
// applications for one design.
func OptimizationSummary(kind PlatformKind, rc RunConfig) (*OptSummary, error) {
	return NewEvaluator(rc, 0).OptimizationSummary(context.Background(), kind)
}

// String renders the summary.
func (s *OptSummary) String() string {
	return fmt.Sprintf("%s optimizations: %s perf, %s energy; communication energy %s -> %s",
		s.Kind, report.FormatRatio(s.PerfGain), report.FormatRatio(s.EnergyGain),
		report.FormatPercent(s.CommBefore), report.FormatPercent(s.CommAfter))
}
