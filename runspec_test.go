package beacon

import (
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// quickSpec is a small runnable spec for the RunSpec tests.
func quickSpec() RunSpec {
	return NewRunSpec(FMSeeding, quickCfg(PinusTaeda))
}

// TestRunSpecJSONRoundTrip pins that marshal→unmarshal is the identity on
// normalized specs, across platforms, flows, faults and co-run sets.
func TestRunSpecJSONRoundTrip(t *testing.T) {
	t.Parallel()
	specs := []RunSpec{
		quickSpec(),
		func() RunSpec {
			s := NewRunSpec(KmerCounting, quickCfg(Human))
			s.Workload.Config.Flow = SinglePass
			s.Kind = BeaconS
			s.Opts = Vanilla()
			s.Opts.IdealComm = true
			s.Faults = "heavy"
			s.FaultSeed = 42
			s.Scheduler = "heap"
			return s
		}(),
		func() RunSpec {
			s := quickSpec()
			s.CoRun = []WorkloadSpec{
				{App: PreAlignment, Config: quickCfg(PinusTaeda)},
				{App: HashSeeding, Config: quickCfg(PiceaGlauca)},
			}
			return s
		}(),
		func() RunSpec {
			s := NewRunSpec(PreAlignment, quickCfg(AmbystomaMexicanum))
			s.Kind = CPU
			return s
		}(),
	}
	for i, want := range specs {
		data, err := json.Marshal(want)
		if err != nil {
			t.Fatalf("spec %d: marshal: %v", i, err)
		}
		got, err := ParseRunSpec(data)
		if err != nil {
			t.Fatalf("spec %d: parse: %v\n%s", i, err, data)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("spec %d: round trip diverged:\nwant %+v\ngot  %+v", i, want, got)
		}
		if got.CanonicalHash() != want.CanonicalHash() {
			t.Errorf("spec %d: round trip changed the canonical hash", i)
		}
	}
}

// TestRunSpecJSONNormalizes pins that marshaling canonicalizes the spelling
// of default names, so the wire form is unambiguous.
func TestRunSpecJSONNormalizes(t *testing.T) {
	t.Parallel()
	s := quickSpec()
	s.Faults = "" // same meaning as "off"
	s.Scheduler = ""
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"faults":"off"`) {
		t.Errorf("marshal did not normalize faults: %s", data)
	}
	if !strings.Contains(string(data), `"scheduler":"calendar"`) {
		t.Errorf("marshal did not normalize scheduler: %s", data)
	}
}

// TestRunSpecStrictDecoding pins the rejection surface: unknown fields at
// every nesting level, trailing data, wrong versions, unknown enum names.
func TestRunSpecStrictDecoding(t *testing.T) {
	t.Parallel()
	valid, err := json.Marshal(quickSpec())
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(mut func(map[string]any)) string {
		var m map[string]any
		if err := json.Unmarshal(valid, &m); err != nil {
			t.Fatal(err)
		}
		mut(m)
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	cases := []struct {
		name     string
		body     string
		sentinel error
	}{
		{"top-level unknown field", mutate(func(m map[string]any) { m["surprise"] = 1 }), ErrBadConfig},
		{"workload unknown field", mutate(func(m map[string]any) {
			m["workload"].(map[string]any)["coverage"] = 30
		}), ErrBadConfig},
		{"options unknown field", mutate(func(m map[string]any) {
			m["options"].(map[string]any)["turbo"] = true
		}), ErrBadConfig},
		{"trailing data", string(valid) + `{"version":1}`, ErrBadConfig},
		{"future version", mutate(func(m map[string]any) { m["version"] = 2 }), ErrBadConfig},
		{"missing version", mutate(func(m map[string]any) { delete(m, "version") }), ErrBadConfig},
		{"unknown application", mutate(func(m map[string]any) {
			m["workload"].(map[string]any)["app"] = "protein-folding"
		}), ErrUnsupportedApp},
		{"unknown platform", mutate(func(m map[string]any) { m["platform"] = "tpu" }), ErrBadConfig},
		{"unknown flow", mutate(func(m map[string]any) {
			m["workload"].(map[string]any)["flow"] = "three-pass"
		}), ErrBadConfig},
		{"not json", "platform=beacon-d", ErrBadConfig},
	}
	for _, tc := range cases {
		if _, err := ParseRunSpec([]byte(tc.body)); !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.sentinel)
		}
	}
}

// TestRunSpecCanonicalStringGolden pins the canonical encoding byte for
// byte. Changing it silently would orphan every cache entry and change
// every job ID — if this test fails, bump workloadGenVersion /
// RunSpecVersion deliberately instead of editing the expectation casually.
func TestRunSpecCanonicalStringGolden(t *testing.T) {
	t.Parallel()
	spec := NewRunSpec(FMSeeding, DefaultWorkloadConfig(PinusTaeda))
	const want = "beacon.RunSpec/v1" +
		"|app=fm-seeding|species=Pt|scale=30000|reads=500|readlen=100" +
		"|errrate=0.01|seed=12495879|seedlen=20|maxhits=8|mem=false" +
		"|memminlen=19|k=28|flow=multi-pass|maxedits=5|candidates=8" +
		"|platform=beacon-d|pack=true|maopt=true|place=true|coal=true|ideal=false" +
		"|faults=off|faultseed=0|scheduler=calendar|corun=0"
	if got := spec.CanonicalString(); got != want {
		t.Errorf("canonical string drifted:\ngot  %s\nwant %s", got, want)
	}
}

// TestRunSpecCanonicalHashCoversEveryField mutates every spec knob — the
// whole WorkloadConfig plus every platform-side field — and checks the
// canonical hash changes. Together with the unkeyed-literal compile guards
// in runspec.go this makes stale cache hits and job-ID collisions across
// differing specs impossible by construction. (It subsumes the former
// per-field workload cache key test: the cache key embeds this encoding.)
func TestRunSpecCanonicalHashCoversEveryField(t *testing.T) {
	t.Parallel()
	base := NewRunSpec(FMSeeding, DefaultWorkloadConfig(PinusTaeda))
	baseHash := base.CanonicalHash()
	mutations := map[string]func(*RunSpec){
		"Version":           func(s *RunSpec) { s.Version++ },
		"Workload.App":      func(s *RunSpec) { s.Workload.App = HashSeeding },
		"Config.Species":    func(s *RunSpec) { s.Workload.Config.Species = Human },
		"Config.Scale":      func(s *RunSpec) { s.Workload.Config.GenomeScale++ },
		"Config.Reads":      func(s *RunSpec) { s.Workload.Config.Reads++ },
		"Config.ReadLength": func(s *RunSpec) { s.Workload.Config.ReadLength++ },
		"Config.ErrorRate":  func(s *RunSpec) { s.Workload.Config.ErrorRate += 0.001 },
		"Config.Seed":       func(s *RunSpec) { s.Workload.Config.Seed++ },
		"Config.SeedLen":    func(s *RunSpec) { s.Workload.Config.SeedLen++ },
		"Config.MaxHits":    func(s *RunSpec) { s.Workload.Config.MaxHits++ },
		"Config.MEMSeeding": func(s *RunSpec) { s.Workload.Config.MEMSeeding = true },
		"Config.MEMMinLen":  func(s *RunSpec) { s.Workload.Config.MEMMinLen++ },
		"Config.K":          func(s *RunSpec) { s.Workload.Config.K++ },
		"Config.Flow":       func(s *RunSpec) { s.Workload.Config.Flow = SinglePass },
		"Config.MaxEdits":   func(s *RunSpec) { s.Workload.Config.MaxEdits++ },
		"Config.Candidates": func(s *RunSpec) { s.Workload.Config.Candidates++ },
		"Kind":              func(s *RunSpec) { s.Kind = BeaconS },
		"Opts.DataPacking":  func(s *RunSpec) { s.Opts.DataPacking = false },
		"Opts.MemAccessOpt": func(s *RunSpec) { s.Opts.MemAccessOpt = false },
		"Opts.Placement":    func(s *RunSpec) { s.Opts.Placement = false },
		"Opts.Coalescing":   func(s *RunSpec) { s.Opts.Coalescing = false },
		"Opts.IdealComm":    func(s *RunSpec) { s.Opts.IdealComm = true },
		"Faults":            func(s *RunSpec) { s.Faults = "heavy" },
		"FaultSeed":         func(s *RunSpec) { s.FaultSeed++ },
		"Scheduler":         func(s *RunSpec) { s.Scheduler = "heap" },
		"CoRun": func(s *RunSpec) {
			s.CoRun = []WorkloadSpec{{App: PreAlignment, Config: DefaultWorkloadConfig(PinusTaeda)}}
		},
	}
	names := make([]string, 0, len(mutations))
	for name := range mutations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := base
		mutations[name](&spec)
		if spec.CanonicalHash() == baseHash {
			t.Errorf("changing %s does not change the canonical hash", name)
		}
	}
	// Co-run order matters: tenant 0 and tenant 1 are different placements.
	a, b := base, base
	a.CoRun = []WorkloadSpec{
		{App: PreAlignment, Config: DefaultWorkloadConfig(PinusTaeda)},
		{App: HashSeeding, Config: DefaultWorkloadConfig(PinusTaeda)},
	}
	b.CoRun = []WorkloadSpec{a.CoRun[1], a.CoRun[0]}
	if a.CanonicalHash() == b.CanonicalHash() {
		t.Error("swapping co-run order does not change the canonical hash")
	}
}

// TestRunSpecCanonicalNormalization pins that equivalent spellings of the
// default fault/scheduler names hash identically, and non-equivalent
// settings do not.
func TestRunSpecCanonicalNormalization(t *testing.T) {
	t.Parallel()
	base := quickSpec()
	for _, alias := range []string{"", "off", "none"} {
		s := base
		s.Faults = alias
		if s.CanonicalHash() != base.CanonicalHash() {
			t.Errorf("faults %q should hash like %q", alias, base.Faults)
		}
	}
	s := base
	s.Scheduler = ""
	if s.CanonicalHash() != base.CanonicalHash() {
		t.Error(`scheduler "" should hash like "calendar"`)
	}
	s.Faults = "default"
	if s.CanonicalHash() == base.CanonicalHash() {
		t.Error(`faults "default" should not hash like "off"`)
	}
}

// TestRunSpecValidate walks the rejection table: each malformed spec maps
// to its sentinel (and therefore to the right HTTP status).
func TestRunSpecValidate(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		mutate   func(*RunSpec)
		sentinel error
	}{
		{"wrong version", func(s *RunSpec) { s.Version = 99 }, ErrBadConfig},
		{"zero reads", func(s *RunSpec) { s.Workload.Config.Reads = 0 }, ErrBadConfig},
		{"unknown species", func(s *RunSpec) { s.Workload.Config.Species = "Zz" }, ErrUnknownSpecies},
		{"extension app", func(s *RunSpec) { s.Workload.App = GraphProcessing }, ErrUnsupportedApp},
		{"unknown app", func(s *RunSpec) { s.Workload.App = Application(99) }, ErrUnsupportedApp},
		{"unknown flow", func(s *RunSpec) { s.Workload.Config.Flow = KmerFlow(9) }, ErrBadConfig},
		{"unknown kind", func(s *RunSpec) { s.Kind = PlatformKind(99) }, ErrBadConfig},
		{"unknown faults", func(s *RunSpec) { s.Faults = "catastrophic" }, ErrBadConfig},
		{"unknown scheduler", func(s *RunSpec) { s.Scheduler = "fifo" }, ErrBadConfig},
		{"co-run on cpu", func(s *RunSpec) {
			s.Kind = CPU
			s.CoRun = []WorkloadSpec{{App: PreAlignment, Config: quickCfg(PinusTaeda)}}
		}, ErrBadConfig},
		{"bad co-run workload", func(s *RunSpec) {
			bad := quickCfg(PinusTaeda)
			bad.Reads = 0
			s.CoRun = []WorkloadSpec{{App: PreAlignment, Config: bad}}
		}, ErrBadConfig},
	}
	for _, tc := range cases {
		spec := quickSpec()
		tc.mutate(&spec)
		if err := spec.Validate(); !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: Validate = %v, want %v", tc.name, err, tc.sentinel)
		}
		if _, err := spec.Execute(nil); !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: Execute = %v, want %v", tc.name, err, tc.sentinel)
		}
	}
	if err := quickSpec().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

// TestRunSpecExecuteMatchesRun pins the tentpole equivalence: a spec run
// through Execute produces results identical to hand-assembling the
// Platform and calling Run — including under fault injection and with a
// co-run set — so the daemon path and the in-process path are one path.
func TestRunSpecExecuteMatchesRun(t *testing.T) {
	t.Parallel()
	spec := quickSpec()
	spec.Faults = "heavy"
	spec.FaultSeed = 7

	got, err := spec.Execute(nil)
	if err != nil {
		t.Fatal(err)
	}
	wl, err := NewWorkload(FMSeeding, quickCfg(PinusTaeda))
	if err != nil {
		t.Fatal(err)
	}
	prof, err := ParseFaultProfile("heavy")
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(Platform{Kind: BeaconD, Opts: AllOptimizations(), Faults: prof, FaultSeed: 7}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Execute diverged from Run:\ngot  %+v\nwant %+v", got.Report, want.Report)
	}

	// Co-located run, built through a shared cache.
	wc, err := OpenWorkloadCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	shared := quickSpec()
	shared.CoRun = []WorkloadSpec{{App: PreAlignment, Config: quickCfg(PinusTaeda)}}
	gotShared, err := shared.Execute(wc)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewWorkload(PreAlignment, quickCfg(PinusTaeda))
	if err != nil {
		t.Fatal(err)
	}
	wantShared, err := Run(Platform{Kind: BeaconD, Opts: AllOptimizations()}, wl, WithCoRun(second))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotShared, wantShared) {
		t.Error("co-run Execute diverged from Run with WithCoRun")
	}
	// Executing the same spec again hits the cache for both workloads and
	// must stay byte-identical.
	again, err := shared.Execute(wc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, gotShared) {
		t.Error("cache-hit Execute diverged from cold Execute")
	}
	if st := wc.Stats(); st.Hits != 2 || st.Misses != 2 {
		t.Errorf("cache stats = %+v, want 2 hits / 2 misses", st)
	}
}

// TestParseEnumInverses pins the parser/String inverses the wire format
// relies on.
func TestParseEnumInverses(t *testing.T) {
	t.Parallel()
	for _, a := range []Application{FMSeeding, HashSeeding, KmerCounting, PreAlignment,
		GraphProcessing, DatabaseSearch, ImageProcessing} {
		got, err := ParseApplication(a.String())
		if err != nil || got != a {
			t.Errorf("ParseApplication(%q) = %v, %v", a.String(), got, err)
		}
	}
	if _, err := ParseApplication("nope"); !errors.Is(err, ErrUnsupportedApp) {
		t.Errorf("unknown app: %v, want ErrUnsupportedApp", err)
	}
	for _, k := range []PlatformKind{CPU, DDRBaseline, BeaconD, BeaconS} {
		got, err := ParsePlatformKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParsePlatformKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParsePlatformKind("abacus"); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown platform: %v, want ErrBadConfig", err)
	}
	for _, f := range []KmerFlow{MultiPass, SinglePass} {
		got, err := ParseKmerFlow(f.String())
		if err != nil || got != f {
			t.Errorf("ParseKmerFlow(%q) = %v, %v", f.String(), got, err)
		}
	}
	if got, err := ParseKmerFlow(""); err != nil || got != MultiPass {
		t.Errorf(`ParseKmerFlow("") = %v, %v, want MultiPass`, got, err)
	}
	if _, err := ParseKmerFlow(fmt.Sprintf("flow(%d)", 9)); !errors.Is(err, ErrBadConfig) {
		t.Errorf("unknown flow: %v, want ErrBadConfig", err)
	}
}
