package beacon

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// RunSpecVersion is the wire version of the RunSpec serialization. Bump it
// whenever the JSON shape or the canonical encoding changes incompatibly;
// decoders reject every other version, so a daemon and its clients can
// never silently disagree about what a spec means.
const RunSpecVersion = 1

// WorkloadSpec names one workload to construct: the application plus its
// full configuration. It is the declarative counterpart of NewWorkload —
// two equal specs build byte-identical workloads — and the unit the
// workload cache is keyed over.
type WorkloadSpec struct {
	// App is the application kind.
	App Application
	// Config parameterizes construction.
	Config WorkloadConfig
}

// RunSpec is the versioned, serializable description of one simulation
// run: what to build (workload + co-run set) and where to replay it
// (platform, optimization ladder position, fault profile and seed, event
// scheduler). It is the single construction path behind the CLIs and the
// beaconsimd daemon: flag sets and HTTP bodies both compile down to a
// RunSpec, Execute turns it into a RunResult, and CanonicalHash gives it a
// stable content address for job IDs and cache keys.
//
// The zero value is not runnable; start from NewRunSpec.
type RunSpec struct {
	// Version is the spec version (RunSpecVersion).
	Version int
	// Workload is the primary workload.
	Workload WorkloadSpec
	// CoRun lists additional workloads co-located with the primary one on
	// a shared BEACON pool (the §II multi-tenant scenario). Empty for
	// single-tenant runs.
	CoRun []WorkloadSpec
	// Kind selects the platform.
	Kind PlatformKind
	// Opts positions BEACON on its optimization ladder.
	Opts Options
	// Faults names the fault-injection profile ("off", "default",
	// "heavy"; "" means "off").
	Faults string
	// FaultSeed seeds the deterministic per-component fault streams.
	FaultSeed uint64
	// Scheduler names the event engine's pending-event queue ("calendar",
	// "heap"; "" means "calendar").
	Scheduler string
}

// NewRunSpec returns a runnable spec for the given workload on the default
// platform: BEACON-D with the full optimization stack, no faults, the
// calendar-queue scheduler.
func NewRunSpec(app Application, cfg WorkloadConfig) RunSpec {
	return RunSpec{
		Version:   RunSpecVersion,
		Workload:  WorkloadSpec{App: app, Config: cfg},
		Kind:      BeaconD,
		Opts:      AllOptimizations(),
		Faults:    "off",
		Scheduler: "calendar",
	}
}

// ParseApplication resolves an application name (the Application.String
// forms). Unknown names report ErrUnsupportedApp.
func ParseApplication(s string) (Application, error) {
	for _, a := range []Application{
		FMSeeding, HashSeeding, KmerCounting, PreAlignment,
		GraphProcessing, DatabaseSearch, ImageProcessing,
	} {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown application %q", ErrUnsupportedApp, s)
}

// ParsePlatformKind resolves a platform name (the PlatformKind.String
// forms: "cpu", "ddr-ndp", "beacon-d", "beacon-s").
func ParsePlatformKind(s string) (PlatformKind, error) {
	for _, k := range []PlatformKind{CPU, DDRBaseline, BeaconD, BeaconS} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("%w: unknown platform %q", ErrBadConfig, s)
}

// String names the counting flow.
func (f KmerFlow) String() string {
	switch f {
	case MultiPass:
		return "multi-pass"
	case SinglePass:
		return "single-pass"
	}
	return fmt.Sprintf("flow(%d)", int(f))
}

// ParseKmerFlow resolves a counting-flow name ("multi-pass", "single-pass";
// "" selects MultiPass).
func ParseKmerFlow(s string) (KmerFlow, error) {
	switch s {
	case "", "multi-pass":
		return MultiPass, nil
	case "single-pass":
		return SinglePass, nil
	}
	return 0, fmt.Errorf("%w: unknown k-mer flow %q", ErrBadConfig, s)
}

// canonicalFaultsName normalizes the fault-profile spelling so equivalent
// specs hash identically ("", "off" and "none" all disable injection).
func canonicalFaultsName(s string) string {
	switch s {
	case "", "off", "none":
		return "off"
	}
	return s
}

// canonicalSchedulerName normalizes the scheduler spelling ("" is the
// calendar default).
func canonicalSchedulerName(s string) string {
	if s == "" {
		return "calendar"
	}
	return s
}

// Compile-time guards: the unkeyed literals fail to compile whenever a
// spec-carrying struct gains or loses a field, forcing the canonical
// encoding below (and its golden test) to be revisited. Stale cache hits
// and hash collisions across spec shapes are impossible by construction
// only while the encoding enumerates every field.
var (
	_ = WorkloadConfig{"", 0, 0, 0, 0, 0, 0, 0, false, 0, 0, MultiPass, 0, 0}
	_ = Options{false, false, false, false, false}
	_ = RunSpec{0, WorkloadSpec{}, nil, 0, Options{}, "", 0, ""}
)

// canonicalFields enumerates every WorkloadSpec field as key=value pairs.
func (ws WorkloadSpec) canonicalFields() []string {
	c := ws.Config
	return []string{
		"app=" + ws.App.String(),
		"species=" + string(c.Species),
		"scale=" + strconv.Itoa(c.GenomeScale),
		"reads=" + strconv.Itoa(c.Reads),
		"readlen=" + strconv.Itoa(c.ReadLength),
		"errrate=" + strconv.FormatFloat(c.ErrorRate, 'g', -1, 64),
		"seed=" + strconv.FormatUint(c.Seed, 10),
		"seedlen=" + strconv.Itoa(c.SeedLen),
		"maxhits=" + strconv.Itoa(c.MaxHits),
		"mem=" + strconv.FormatBool(c.MEMSeeding),
		"memminlen=" + strconv.Itoa(c.MEMMinLen),
		"k=" + strconv.Itoa(c.K),
		"flow=" + c.Flow.String(),
		"maxedits=" + strconv.Itoa(c.MaxEdits),
		"candidates=" + strconv.Itoa(c.Candidates),
	}
}

// CanonicalString renders the workload identity as a stable key=value
// enumeration. Every field participates, so two workloads share the string
// exactly when NewWorkload would build them identically.
func (ws WorkloadSpec) CanonicalString() string {
	return strings.Join(ws.canonicalFields(), "|")
}

// CanonicalHash is the SHA-256 content address of CanonicalString — the
// identity the workload cache keys over.
func (ws WorkloadSpec) CanonicalHash() string {
	sum := sha256.Sum256([]byte(ws.CanonicalString()))
	return hex.EncodeToString(sum[:])
}

// Build constructs the workload, backed by the cache when non-nil (exactly
// NewWorkloadCached).
func (ws WorkloadSpec) Build(wc *WorkloadCache) (*Workload, error) {
	return NewWorkloadCached(ws.App, ws.Config, wc)
}

// validate checks the workload half of a spec without building anything.
func (ws WorkloadSpec) validate() error {
	switch ws.App {
	case FMSeeding, HashSeeding, KmerCounting, PreAlignment:
	case GraphProcessing, DatabaseSearch, ImageProcessing:
		return fmt.Errorf("%w: %v has its own constructor and is not runnable from a RunSpec", ErrUnsupportedApp, ws.App)
	default:
		return fmt.Errorf("%w: application(%d)", ErrUnsupportedApp, int(ws.App))
	}
	if err := ws.Config.validate(); err != nil {
		return err
	}
	if _, err := ws.Config.Species.internal(); err != nil {
		return err
	}
	if _, err := ParseKmerFlow(ws.Config.Flow.String()); err != nil {
		return err
	}
	return nil
}

// CanonicalString renders the whole spec as a stable key=value enumeration:
// version, every workload field, every platform knob, the normalized fault
// and scheduler names, and the co-run set in order. Two specs share the
// string exactly when Execute would produce byte-identical results from
// byte-identical construction work.
func (s RunSpec) CanonicalString() string {
	parts := make([]string, 0, 24+len(s.CoRun))
	parts = append(parts, "beacon.RunSpec/v"+strconv.Itoa(s.Version))
	parts = append(parts, s.Workload.canonicalFields()...)
	parts = append(parts,
		"platform="+s.Kind.String(),
		"pack="+strconv.FormatBool(s.Opts.DataPacking),
		"maopt="+strconv.FormatBool(s.Opts.MemAccessOpt),
		"place="+strconv.FormatBool(s.Opts.Placement),
		"coal="+strconv.FormatBool(s.Opts.Coalescing),
		"ideal="+strconv.FormatBool(s.Opts.IdealComm),
		"faults="+canonicalFaultsName(s.Faults),
		"faultseed="+strconv.FormatUint(s.FaultSeed, 10),
		"scheduler="+canonicalSchedulerName(s.Scheduler),
		"corun="+strconv.Itoa(len(s.CoRun)),
	)
	for i, c := range s.CoRun {
		parts = append(parts, "corun"+strconv.Itoa(i)+"={"+c.CanonicalString()+"}")
	}
	return strings.Join(parts, "|")
}

// CanonicalHash is the SHA-256 content address of the spec's canonical
// encoding. Equivalent spellings (empty vs named defaults) hash
// identically; any semantic difference changes the hash. The daemon
// derives job IDs from it and dedupes identical submissions against it.
func (s RunSpec) CanonicalHash() string {
	sum := sha256.Sum256([]byte(s.CanonicalString()))
	return hex.EncodeToString(sum[:])
}

// Platform resolves the spec's platform half: kind, optimization options,
// parsed fault profile and scheduler kind. It does not validate the
// workload half (Validate does both).
func (s RunSpec) Platform() (Platform, error) {
	switch s.Kind {
	case CPU, DDRBaseline, BeaconD, BeaconS:
	default:
		return Platform{}, fmt.Errorf("%w: unknown platform kind %d", ErrBadConfig, int(s.Kind))
	}
	prof, err := ParseFaultProfile(canonicalFaultsName(s.Faults))
	if err != nil {
		return Platform{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	sched, err := ParseSchedulerKind(canonicalSchedulerName(s.Scheduler))
	if err != nil {
		return Platform{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	return Platform{
		Kind:      s.Kind,
		Opts:      s.Opts,
		Faults:    prof,
		FaultSeed: s.FaultSeed,
		Scheduler: sched,
	}, nil
}

// Validate checks the whole spec without building or simulating anything:
// version, workload configuration and dataset, platform knobs, and the
// co-run set. Failures wrap the sentinel errors, so HTTPStatus maps them
// directly onto API status codes.
func (s RunSpec) Validate() error {
	if s.Version != RunSpecVersion {
		return fmt.Errorf("%w: unsupported runspec version %d (this build speaks version %d)",
			ErrBadConfig, s.Version, RunSpecVersion)
	}
	if err := s.Workload.validate(); err != nil {
		return err
	}
	if _, err := s.Platform(); err != nil {
		return err
	}
	if len(s.CoRun) > 0 && s.Kind != BeaconD && s.Kind != BeaconS {
		return fmt.Errorf("%w: co-located runs require a BEACON platform, got %v", ErrBadConfig, s.Kind)
	}
	for i, c := range s.CoRun {
		if err := c.validate(); err != nil {
			return fmt.Errorf("co-run workload %d: %w", i, err)
		}
	}
	return nil
}

// Execute validates the spec, builds its workloads (through the cache when
// non-nil, so identical specs across callers dedupe to one construction)
// and replays them on the resolved platform. Extra options compose on top
// — the daemon attaches WithObserver this way. Determinism: equal specs
// produce byte-identical results.
func (s RunSpec) Execute(wc *WorkloadCache, opts ...RunOption) (*RunResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	p, err := s.Platform()
	if err != nil {
		return nil, err
	}
	wl, err := s.Workload.Build(wc)
	if err != nil {
		return nil, err
	}
	ro := make([]RunOption, 0, len(opts)+1)
	if len(s.CoRun) > 0 {
		co := make([]*Workload, len(s.CoRun))
		for i, cs := range s.CoRun {
			if co[i], err = cs.Build(wc); err != nil {
				return nil, fmt.Errorf("co-run workload %d: %w", i, err)
			}
		}
		ro = append(ro, WithCoRun(co...))
	}
	ro = append(ro, opts...)
	return Run(p, wl, ro...)
}

// workloadWire is the JSON shape of one WorkloadSpec.
type workloadWire struct {
	App         string  `json:"app"`
	Species     string  `json:"species"`
	GenomeScale int     `json:"genome_scale"`
	Reads       int     `json:"reads"`
	ReadLength  int     `json:"read_length"`
	ErrorRate   float64 `json:"error_rate"`
	Seed        uint64  `json:"seed"`
	SeedLen     int     `json:"seed_len"`
	MaxHits     int     `json:"max_hits"`
	MEMSeeding  bool    `json:"mem_seeding"`
	MEMMinLen   int     `json:"mem_min_len"`
	K           int     `json:"k"`
	Flow        string  `json:"flow"`
	MaxEdits    int     `json:"max_edits"`
	Candidates  int     `json:"candidates"`
}

// optionsWire is the JSON shape of the optimization ladder position.
type optionsWire struct {
	DataPacking  bool `json:"data_packing"`
	MemAccessOpt bool `json:"mem_access_opt"`
	Placement    bool `json:"placement"`
	Coalescing   bool `json:"coalescing"`
	IdealComm    bool `json:"ideal_comm"`
}

// runSpecWire is the JSON shape of a RunSpec.
type runSpecWire struct {
	Version   int            `json:"version"`
	Workload  workloadWire   `json:"workload"`
	CoRun     []workloadWire `json:"co_run,omitempty"`
	Platform  string         `json:"platform"`
	Options   optionsWire    `json:"options"`
	Faults    string         `json:"faults"`
	FaultSeed uint64         `json:"fault_seed"`
	Scheduler string         `json:"scheduler"`
}

func workloadToWire(ws WorkloadSpec) workloadWire {
	c := ws.Config
	return workloadWire{
		App:         ws.App.String(),
		Species:     string(c.Species),
		GenomeScale: c.GenomeScale,
		Reads:       c.Reads,
		ReadLength:  c.ReadLength,
		ErrorRate:   c.ErrorRate,
		Seed:        c.Seed,
		SeedLen:     c.SeedLen,
		MaxHits:     c.MaxHits,
		MEMSeeding:  c.MEMSeeding,
		MEMMinLen:   c.MEMMinLen,
		K:           c.K,
		Flow:        c.Flow.String(),
		MaxEdits:    c.MaxEdits,
		Candidates:  c.Candidates,
	}
}

func workloadFromWire(w workloadWire) (WorkloadSpec, error) {
	app, err := ParseApplication(w.App)
	if err != nil {
		return WorkloadSpec{}, err
	}
	flow, err := ParseKmerFlow(w.Flow)
	if err != nil {
		return WorkloadSpec{}, err
	}
	return WorkloadSpec{
		App: app,
		Config: WorkloadConfig{
			Species:     Species(w.Species),
			GenomeScale: w.GenomeScale,
			Reads:       w.Reads,
			ReadLength:  w.ReadLength,
			ErrorRate:   w.ErrorRate,
			Seed:        w.Seed,
			SeedLen:     w.SeedLen,
			MaxHits:     w.MaxHits,
			MEMSeeding:  w.MEMSeeding,
			MEMMinLen:   w.MEMMinLen,
			K:           w.K,
			Flow:        flow,
			MaxEdits:    w.MaxEdits,
			Candidates:  w.Candidates,
		},
	}, nil
}

// MarshalJSON renders the spec in its versioned wire form with normalized
// fault and scheduler names, so marshaling is a canonicalizing operation:
// unmarshal(marshal(s)) compares equal for any valid s.
func (s RunSpec) MarshalJSON() ([]byte, error) {
	w := runSpecWire{
		Version:   s.Version,
		Workload:  workloadToWire(s.Workload),
		Platform:  s.Kind.String(),
		Faults:    canonicalFaultsName(s.Faults),
		FaultSeed: s.FaultSeed,
		Scheduler: canonicalSchedulerName(s.Scheduler),
		Options: optionsWire{
			DataPacking:  s.Opts.DataPacking,
			MemAccessOpt: s.Opts.MemAccessOpt,
			Placement:    s.Opts.Placement,
			Coalescing:   s.Opts.Coalescing,
			IdealComm:    s.Opts.IdealComm,
		},
	}
	for _, c := range s.CoRun {
		w.CoRun = append(w.CoRun, workloadToWire(c))
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes the versioned wire form strictly: unknown fields,
// trailing data, unknown enum names and any version other than
// RunSpecVersion are rejected (wrapping ErrBadConfig / ErrUnsupportedApp),
// so a daemon never half-understands a client's spec.
func (s *RunSpec) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w runSpecWire
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("%w: runspec: %v", ErrBadConfig, err)
	}
	if dec.More() {
		return fmt.Errorf("%w: runspec: trailing data after spec", ErrBadConfig)
	}
	if w.Version != RunSpecVersion {
		return fmt.Errorf("%w: unsupported runspec version %d (this build speaks version %d)",
			ErrBadConfig, w.Version, RunSpecVersion)
	}
	ws, err := workloadFromWire(w.Workload)
	if err != nil {
		return err
	}
	kind, err := ParsePlatformKind(w.Platform)
	if err != nil {
		return err
	}
	out := RunSpec{
		Version:   w.Version,
		Workload:  ws,
		Kind:      kind,
		Faults:    canonicalFaultsName(w.Faults),
		FaultSeed: w.FaultSeed,
		Scheduler: canonicalSchedulerName(w.Scheduler),
		Opts: Options{
			DataPacking:  w.Options.DataPacking,
			MemAccessOpt: w.Options.MemAccessOpt,
			Placement:    w.Options.Placement,
			Coalescing:   w.Options.Coalescing,
			IdealComm:    w.Options.IdealComm,
		},
	}
	for i, cw := range w.CoRun {
		cs, err := workloadFromWire(cw)
		if err != nil {
			return fmt.Errorf("co-run workload %d: %w", i, err)
		}
		out.CoRun = append(out.CoRun, cs)
	}
	*s = out
	return nil
}

// ParseRunSpec decodes a spec from its JSON wire form (strictly — see
// UnmarshalJSON). Unlike json.Unmarshal, it reports malformed JSON and
// trailing data through ErrBadConfig too, so callers get one failure
// class for "the client sent something unusable".
func ParseRunSpec(data []byte) (RunSpec, error) {
	var s RunSpec
	if err := s.UnmarshalJSON(data); err != nil {
		return RunSpec{}, err
	}
	return s, nil
}
