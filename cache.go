package beacon

import (
	"sync"
	"sync/atomic"
)

// workloadKey identifies one cacheable functional-phase build. WorkloadConfig
// is a flat struct of scalars, so the full configuration participates in the
// key: any knob change (scale, seed, flow, MEM mode, ...) is a different
// workload.
type workloadKey struct {
	app Application
	cfg WorkloadConfig
}

// workloadCache memoizes the functional phase: the synthetic genome, the
// FM/hash indexes and the trace.Task lists are built once per configuration
// and shared read-only by every simulation that replays them. The ladder
// experiments re-simulate the same workload at 4-6 optimization steps (plus
// CPU/DDR/ideal references), so this removes the dominant redundant work of
// a figure run.
//
// Safe for concurrent use: each entry is built exactly once (per-entry
// sync.Once, singleflight-style), and concurrent requesters of the same key
// block until the first build finishes. Workloads and their traces are
// immutable after construction — the timing simulators only read them —
// which is what makes sharing across parallel engines race-free (the runner
// stress tests run this under -race).
type workloadCache struct {
	mu     sync.Mutex
	m      map[workloadKey]*workloadEntry
	builds atomic.Int64
	// disk, when non-nil, backs first-use builds with the on-disk
	// content-addressed cache: a disk hit decodes the stored trace instead
	// of re-running the functional phase.
	disk *WorkloadCache
}

type workloadEntry struct {
	once sync.Once
	wl   *Workload
	err  error
}

func newWorkloadCache() *workloadCache {
	return &workloadCache{m: make(map[workloadKey]*workloadEntry)}
}

// get returns the cached workload for (app, cfg), building it on first use.
func (c *workloadCache) get(app Application, cfg WorkloadConfig) (*Workload, error) {
	key := workloadKey{app: app, cfg: cfg}
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &workloadEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.builds.Add(1)
		e.wl, e.err = NewWorkloadCached(app, cfg, c.disk)
	})
	return e.wl, e.err
}

// Builds reports how many distinct workloads were actually constructed —
// the cache's effectiveness metric, asserted by tests.
func (c *workloadCache) Builds() int64 { return c.builds.Load() }
