package beacon

import (
	"fmt"

	"beacon/internal/obs"
)

// RunOption customizes a Run call. The zero option set replays the
// workload bare: no instrumentation, no fault injection, single tenant.
type RunOption func(*runSettings)

type runSettings struct {
	ob        *obs.Obs
	faults    FaultProfile
	faultSeed uint64
	setFaults bool
	sched     SchedulerKind
	setSched  bool
	shared    bool
	coRun     []*Workload
}

// WithObserver attaches an observability sink: component metrics, activity
// spans and snapshot series accumulate in ob during the run. A nil ob is a
// no-op. Instrumentation is observation-only — the returned Report is
// byte-identical either way.
func WithObserver(ob *obs.Obs) RunOption {
	return func(s *runSettings) { s.ob = ob }
}

// WithFaultInjection enables deterministic fault injection with the given
// profile and seed (overriding the Platform's own Faults/FaultSeed fields).
// A zero profile disables injection. The CPU and DDR baselines model
// neither the CXL fabric nor its RAS path and ignore it.
func WithFaultInjection(profile FaultProfile, seed uint64) RunOption {
	return func(s *runSettings) {
		s.faults = profile
		s.faultSeed = seed
		s.setFaults = true
	}
}

// WithScheduler selects the event engine's pending-event queue
// implementation (overriding the Platform's own Scheduler field): the
// calendar queue (the default) or the reference binary heap. Reports are
// byte-identical across kinds — the differential suite in internal/sim
// proves the dispatch sequences equal — so this is a performance knob and
// a determinism cross-check, never a modeling choice.
func WithScheduler(k SchedulerKind) RunOption {
	return func(s *runSettings) {
		s.sched = k
		s.setSched = true
	}
}

// WithCoRun co-locates additional workloads with the primary one — the §II
// memory-pooling scenario: all tenants share one pool's DIMMs, fabric and
// NDP modules, their tasks interleaving in the task schedulers. Requires a
// BEACON platform. The result's Report aggregates all tenants; Tenants
// lists each workload's own completion.
func WithCoRun(ws ...*Workload) RunOption {
	return func(s *runSettings) {
		s.shared = true
		s.coRun = append(s.coRun, ws...)
	}
}

// RunResult is the outcome of one Run.
type RunResult struct {
	// Report summarizes the run: the workload's own report for a
	// single-tenant run, the combined (all-tenant) report for a co-located
	// one.
	Report *Report
	// Tenants lists per-workload completions for co-located runs (nil for
	// single-tenant runs).
	Tenants []TenantReport
}

// Run replays the workload on the platform. It is the single entry point
// behind Simulate, SimulateObserved and SimulateShared: options select
// instrumentation (WithObserver), deterministic fault injection
// (WithFaultInjection) and multi-tenant co-location (WithCoRun), and they
// compose — except that co-located runs do not support an observer.
//
// Determinism: identical platform, workload(s) and options produce a
// byte-identical result.
func Run(p Platform, w *Workload, opts ...RunOption) (*RunResult, error) {
	var s runSettings
	for _, o := range opts {
		o(&s)
	}
	if s.setFaults {
		p.Faults = s.faults
		p.FaultSeed = s.faultSeed
	}
	if s.setSched {
		p.Scheduler = s.sched
	}
	if s.shared {
		if s.ob != nil {
			return nil, fmt.Errorf("%w: co-located runs do not support an observer", ErrBadConfig)
		}
		sr, err := simulateShared(p, append([]*Workload{w}, s.coRun...))
		if err != nil {
			return nil, err
		}
		return &RunResult{Report: &sr.Combined, Tenants: sr.Tenants}, nil
	}
	rep, err := simulateOne(p, w, s.ob)
	if err != nil {
		return nil, err
	}
	return &RunResult{Report: rep}, nil
}
