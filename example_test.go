package beacon_test

import (
	"fmt"

	beacon "beacon"
)

// ExampleSimulate runs FM-index seeding on BEACON-D with the full
// optimization stack and checks the headline relations.
func ExampleSimulate() {
	cfg := beacon.DefaultWorkloadConfig(beacon.PinusTaeda)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	wl, err := beacon.NewFMSeedingWorkload(cfg)
	if err != nil {
		panic(err)
	}
	cpu, err := beacon.Simulate(beacon.Platform{Kind: beacon.CPU}, wl)
	if err != nil {
		panic(err)
	}
	d, err := beacon.Simulate(beacon.Platform{
		Kind: beacon.BeaconD,
		Opts: beacon.AllOptimizations(),
	}, wl)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", wl.Verified)
	fmt.Println("beacon-d faster than cpu:", d.Seconds < cpu.Seconds)
	// Output:
	// verified: true
	// beacon-d faster than cpu: true
}

// ExampleNewKmerCountingWorkload contrasts the two counting flows.
func ExampleNewKmerCountingWorkload() {
	cfg := beacon.DefaultWorkloadConfig(beacon.Human)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	mp, err := beacon.NewKmerCountingWorkload(cfg)
	if err != nil {
		panic(err)
	}
	cfg.Flow = beacon.SinglePass
	sp, err := beacon.NewKmerCountingWorkload(cfg)
	if err != nil {
		panic(err)
	}
	// Multi-pass reads the input twice, so its trace has about twice the
	// tasks of single-pass.
	fmt.Println("multi-pass tasks ==", mp.Tasks/sp.Tasks, "x single-pass tasks")
	// Output:
	// multi-pass tasks == 2 x single-pass tasks
}

// ExampleOptions shows positioning a platform on the optimization ladder.
func ExampleOptions() {
	vanilla := beacon.Vanilla()
	full := beacon.AllOptimizations()
	fmt.Println("vanilla packing:", vanilla.DataPacking)
	fmt.Println("full coalescing:", full.Coalescing)
	// Output:
	// vanilla packing: false
	// full coalescing: true
}
