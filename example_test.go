package beacon_test

import (
	"fmt"
	"os"

	beacon "beacon"
	"beacon/internal/obs"
)

// ExampleRun replays one workload on two platforms through the unified
// entry point and checks the headline relation.
func ExampleRun() {
	cfg := beacon.DefaultWorkloadConfig(beacon.PinusTaeda)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	wl, err := beacon.NewWorkload(beacon.FMSeeding, cfg)
	if err != nil {
		panic(err)
	}
	cpu, err := beacon.Run(beacon.Platform{Kind: beacon.CPU}, wl)
	if err != nil {
		panic(err)
	}
	d, err := beacon.Run(beacon.Platform{
		Kind: beacon.BeaconD,
		Opts: beacon.AllOptimizations(),
	}, wl)
	if err != nil {
		panic(err)
	}
	fmt.Println("beacon-d faster than cpu:", d.Report.Seconds < cpu.Report.Seconds)
	// Output:
	// beacon-d faster than cpu: true
}

// ExampleRun_observer attaches an observability sink. Instrumentation is
// observation-only: the report is identical with or without it.
func ExampleRun_observer() {
	cfg := beacon.DefaultWorkloadConfig(beacon.PinusTaeda)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	wl, err := beacon.NewWorkload(beacon.PreAlignment, cfg)
	if err != nil {
		panic(err)
	}
	p := beacon.Platform{Kind: beacon.BeaconS, Opts: beacon.AllOptimizations()}
	bare, err := beacon.Run(p, wl)
	if err != nil {
		panic(err)
	}
	ob := obs.New("demo")
	observed, err := beacon.Run(p, wl, beacon.WithObserver(ob))
	if err != nil {
		panic(err)
	}
	fmt.Println("observation-only:", bare.Report.Cycles == observed.Report.Cycles)
	fmt.Println("snapshots recorded:", len(ob.Metrics.Snapshots()) > 0)
	// Output:
	// observation-only: true
	// snapshots recorded: true
}

// ExampleRun_faultInjection enables deterministic fault injection: the
// same profile and seed always injects the same faults.
func ExampleRun_faultInjection() {
	cfg := beacon.DefaultWorkloadConfig(beacon.PinusTaeda)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	wl, err := beacon.NewWorkload(beacon.FMSeeding, cfg)
	if err != nil {
		panic(err)
	}
	p := beacon.Platform{Kind: beacon.BeaconD, Opts: beacon.AllOptimizations()}
	a, err := beacon.Run(p, wl, beacon.WithFaultInjection(beacon.HeavyFaultProfile(), 1))
	if err != nil {
		panic(err)
	}
	b, err := beacon.Run(p, wl, beacon.WithFaultInjection(beacon.HeavyFaultProfile(), 1))
	if err != nil {
		panic(err)
	}
	fmt.Println("faults injected:", a.Report.Faults.Total() > 0)
	fmt.Println("deterministic:", a.Report.Cycles == b.Report.Cycles && a.Report.Faults == b.Report.Faults)
	// Output:
	// faults injected: true
	// deterministic: true
}

// ExampleRun_coRun co-locates two workloads on one memory pool — the
// multi-tenant scenario. The result carries the combined report plus each
// tenant's own completion.
func ExampleRun_coRun() {
	cfg := beacon.DefaultWorkloadConfig(beacon.PinusTaeda)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	seeding, err := beacon.NewWorkload(beacon.FMSeeding, cfg)
	if err != nil {
		panic(err)
	}
	prealign, err := beacon.NewWorkload(beacon.PreAlignment, cfg)
	if err != nil {
		panic(err)
	}
	p := beacon.Platform{Kind: beacon.BeaconS, Opts: beacon.AllOptimizations()}
	res, err := beacon.Run(p, seeding, beacon.WithCoRun(prealign))
	if err != nil {
		panic(err)
	}
	fmt.Println("tenants:", len(res.Tenants))
	fmt.Println("combined run outlasts each tenant:",
		res.Report.Seconds >= res.Tenants[0].Seconds && res.Report.Seconds >= res.Tenants[1].Seconds)
	// Output:
	// tenants: 2
	// combined run outlasts each tenant: true
}

// ExampleNewWorkloadCached backs workload construction with the
// content-addressed on-disk cache: the second construction of the same
// configuration decodes the stored trace instead of re-running the
// functional kernels.
func ExampleNewWorkloadCached() {
	dir, err := os.MkdirTemp("", "beacon-wcache-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	wc, err := beacon.OpenWorkloadCache(dir)
	if err != nil {
		panic(err)
	}
	cfg := beacon.DefaultWorkloadConfig(beacon.PinusTaeda)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	cold, err := beacon.NewWorkloadCached(beacon.FMSeeding, cfg, wc)
	if err != nil {
		panic(err)
	}
	warm, err := beacon.NewWorkloadCached(beacon.FMSeeding, cfg, wc)
	if err != nil {
		panic(err)
	}
	st := wc.Stats()
	fmt.Println("hits:", st.Hits, "misses:", st.Misses)
	fmt.Println("identical trace:", cold.Steps == warm.Steps && cold.FootprintBytes == warm.FootprintBytes)
	// Output:
	// hits: 1 misses: 1
	// identical trace: true
}

// ExampleSimulate runs FM-index seeding on BEACON-D with the full
// optimization stack and checks the headline relations.
func ExampleSimulate() {
	cfg := beacon.DefaultWorkloadConfig(beacon.PinusTaeda)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	wl, err := beacon.NewFMSeedingWorkload(cfg)
	if err != nil {
		panic(err)
	}
	cpu, err := beacon.Simulate(beacon.Platform{Kind: beacon.CPU}, wl)
	if err != nil {
		panic(err)
	}
	d, err := beacon.Simulate(beacon.Platform{
		Kind: beacon.BeaconD,
		Opts: beacon.AllOptimizations(),
	}, wl)
	if err != nil {
		panic(err)
	}
	fmt.Println("verified:", wl.Verified)
	fmt.Println("beacon-d faster than cpu:", d.Seconds < cpu.Seconds)
	// Output:
	// verified: true
	// beacon-d faster than cpu: true
}

// ExampleNewKmerCountingWorkload contrasts the two counting flows.
func ExampleNewKmerCountingWorkload() {
	cfg := beacon.DefaultWorkloadConfig(beacon.Human)
	cfg.GenomeScale = 8000
	cfg.Reads = 100

	mp, err := beacon.NewKmerCountingWorkload(cfg)
	if err != nil {
		panic(err)
	}
	cfg.Flow = beacon.SinglePass
	sp, err := beacon.NewKmerCountingWorkload(cfg)
	if err != nil {
		panic(err)
	}
	// Multi-pass reads the input twice, so its trace has about twice the
	// tasks of single-pass.
	fmt.Println("multi-pass tasks ==", mp.Tasks/sp.Tasks, "x single-pass tasks")
	// Output:
	// multi-pass tasks == 2 x single-pass tasks
}

// ExampleOptions shows positioning a platform on the optimization ladder.
func ExampleOptions() {
	vanilla := beacon.Vanilla()
	full := beacon.AllOptimizations()
	fmt.Println("vanilla packing:", vanilla.DataPacking)
	fmt.Println("full coalescing:", full.Coalescing)
	// Output:
	// vanilla packing: false
	// full coalescing: true
}
